// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables I–V, Figures 3–5). Each driver builds the
// instance suite deterministically from seeds, runs SAIM and the relevant
// baselines, and renders a report.Table mirroring the paper's layout.
//
// Two presets are provided:
//
//   - Reduced (default): smaller instances and sample budgets so the whole
//     suite completes in minutes on one CPU core. The *shape* of the
//     paper's results (who wins, the feasibility/accuracy trade-off, the
//     sample-budget gap) is preserved; absolute sizes are not.
//   - Paper: the paper's N, run counts and MCS budgets (Table I). On a
//     single core this takes many hours; use it selectively.
//
// EXPERIMENTS.md in the repository root records paper-vs-measured numbers
// for every experiment.
package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/stats"
)

// Preset selects an experiment scale.
type Preset int

const (
	// Reduced runs shrunken instances and budgets (minutes on one core).
	Reduced Preset = iota
	// Paper runs the paper's full instance sizes and budgets.
	Paper
	// Smoke runs tiny configurations for tests and CI.
	Smoke
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case Reduced:
		return "reduced"
	case Paper:
		return "paper"
	case Smoke:
		return "smoke"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// ParsePreset converts a CLI string into a Preset.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "reduced", "":
		return Reduced, nil
	case "paper":
		return Paper, nil
	case "smoke":
		return Smoke, nil
	default:
		return Reduced, fmt.Errorf("experiments: unknown preset %q (want reduced, paper, or smoke)", s)
	}
}

// Config carries the cross-experiment knobs.
type Config struct {
	// Preset selects the scale.
	Preset Preset
	// Seed offsets all instance and solver seeds; the default 0 matches
	// the published EXPERIMENTS.md numbers.
	Seed uint64
	// Verbose enables per-instance progress lines on stderr.
	Verbose bool
	// Ctx, when non-nil, cancels the long-running solver loops inside the
	// experiment drivers at their next annealing-run boundary (cmd/saimexp
	// wires Ctrl-C here). Cancelled drivers report partial results.
	Ctx context.Context
}

// Context returns the configured context, defaulting to Background.
func (c Config) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// qkpBudget bundles the per-preset QKP experiment parameters (paper
// Table I row "QKP" for the Paper preset).
type qkpBudget struct {
	n         int // items per instance
	instances int // instances per density class
	runs      int // SAIM iterations = penalty SA runs (equal budget)
	sweeps    int // MCS per run
	longRuns  int // penalty-method long runs ("10 SA runs of 2e5 MCS")
	longMCS   int // MCS per long run
	ptRep     int // PT replicas
	ptSweeps  int // PT sweeps per replica
	betaMax   float64
	eta       float64
	alpha     float64
}

func qkpBudgetFor(p Preset, paperN int) qkpBudget {
	switch p {
	case Paper:
		return qkpBudget{
			n: paperN, instances: 10, runs: 2000, sweeps: 1000,
			longRuns: 10, longMCS: 200000, ptRep: 26, ptSweeps: 75000,
			betaMax: 10, eta: 20, alpha: 2,
		}
	case Smoke:
		return qkpBudget{
			n: 16, instances: 2, runs: 60, sweeps: 120,
			longRuns: 3, longMCS: 2000, ptRep: 4, ptSweeps: 600,
			betaMax: 10, eta: 20, alpha: 2,
		}
	default: // Reduced
		n := 40
		if paperN >= 200 {
			n = 60
		}
		if paperN >= 300 {
			n = 80
		}
		// η = 80 rather than the paper's 20, and 600 iterations: reduced
		// instances keep the paper's P<Pc gap but compress the budget, so
		// the λ transient must be crossed faster; dense (d ≥ 75%) classes
		// need the full 600×η=80 combination (see EXPERIMENTS.md).
		return qkpBudget{
			n: n, instances: 4, runs: 600, sweeps: 300,
			longRuns: 6, longMCS: 20000, ptRep: 13, ptSweeps: 6000,
			betaMax: 10, eta: 80, alpha: 2,
		}
	}
}

// instanceSeed derives the deterministic generator seed for an instance.
func instanceSeed(family string, n int, klass, id int, offset uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, b := range []byte(family) {
		mix(uint64(b))
	}
	mix(uint64(n))
	mix(uint64(klass))
	mix(uint64(id))
	mix(offset)
	return h
}

// qkpReference computes the reference optimum for accuracy reporting: exact
// B&B when it finishes within the node budget, otherwise the best cost any
// solver has produced (best-known convention). It returns the cost (negative)
// and whether it is a proven optimum.
func qkpReference(ctx context.Context, inst *qkp.Instance, fallback ...float64) (float64, bool) {
	limit := 3_000_000
	if inst.N > 60 {
		limit = 1_200_000
	}
	res, err := exact.SolveQKPContext(ctx, inst, exact.Options{NodeLimit: limit})
	best := math.Inf(1)
	if err == nil {
		best = res.Cost
		if res.Optimal {
			return best, true
		}
	}
	for _, f := range fallback {
		if f < best {
			best = f
		}
	}
	return best, false
}

// saimStats extracts the paper's per-instance SAIM metrics from a trace:
// best accuracy, mean accuracy over feasible samples, feasible ratio (%),
// and optimality ratio (% of feasible samples hitting OPT).
type saimStats struct {
	BestAcc    float64
	AvgAcc     float64
	FeasPct    float64
	OptimalPct float64
}

func statsFromTrace(tr *core.Trace, opt float64) saimStats {
	var feasAcc []float64
	optCount := 0
	for i, c := range tr.Cost {
		if !tr.Feasible[i] {
			continue
		}
		feasAcc = append(feasAcc, qkp.Accuracy(c, opt))
		if c <= opt+1e-9 {
			optCount++
		}
	}
	out := saimStats{}
	if len(feasAcc) == 0 {
		return out
	}
	out.BestAcc = stats.Max(feasAcc)
	out.AvgAcc = stats.Mean(feasAcc)
	out.FeasPct = 100 * float64(len(feasAcc)) / float64(len(tr.Cost))
	out.OptimalPct = 100 * float64(optCount) / float64(len(feasAcc))
	return out
}

// accuracyOf maps a possibly-absent cost to the paper's accuracy metric,
// returning NaN when no feasible solution exists.
func accuracyOf(cost, opt float64) float64 {
	if math.IsInf(cost, 1) {
		return math.NaN()
	}
	return qkp.Accuracy(cost, opt)
}

// meanAccuracy averages accuracies of a feasible-cost list (NaN if empty).
func meanAccuracy(costs []float64, opt float64) float64 {
	if len(costs) == 0 {
		return math.NaN()
	}
	acc := make([]float64, len(costs))
	for i, c := range costs {
		acc[i] = qkp.Accuracy(c, opt)
	}
	return stats.Mean(acc)
}

// buildQKP constructs the SAIM problem for an instance with the paper's
// binary slack encoding.
func buildQKP(inst *qkp.Instance) *core.Problem {
	return inst.ToProblem(constraint.Binary)
}
