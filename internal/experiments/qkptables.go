package experiments

import (
	"fmt"
	"math"
	"os"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/pt"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/report"
	"github.com/ising-machines/saim/internal/stats"
)

// Table2Row holds per-instance results for Table II (SAIM vs the penalty
// method under an equal sample budget, plus the tuned long-run penalty
// method).
type Table2Row struct {
	Instance string
	// OptCost is the reference optimum (negative); Proven marks exact.
	OptCost float64
	Proven  bool
	// SAIM columns.
	SAIMBest, SAIMAvg, SAIMFeas float64
	// Penalty method, same budget as SAIM.
	PenBest, PenAvg, PenFeas float64
	// Penalty method, few long runs with tuned P.
	LongBest, LongAvg, LongFeas float64
	// TunedAlpha is the tuned P expressed in units of d·N (the paper
	// reports "130dN" etc.).
	TunedAlpha float64
}

// Table2Result bundles the rows and the rendered table.
type Table2Result struct {
	Rows  []Table2Row
	Table *report.Table
}

// Table2 reproduces Table II: QKP at the paper's N=100 with densities 25%
// and 50%, comparing SAIM against the penalty method at the same 2M-MCS
// budget and against the tuned long-run penalty method.
func Table2(cfg Config) (*Table2Result, error) {
	b := qkpBudgetFor(cfg.Preset, 100)
	densities := []float64{0.25, 0.5}
	out := &Table2Result{}
	tb := report.New(
		fmt.Sprintf("Table II — penalty method vs SAIM for QKP (preset %s, N=%d, %d runs × %d MCS)",
			cfg.Preset, b.n, b.runs, b.sweeps),
		"Instance", "SAIM best", "SAIM avg (feas%)", "Penalty best", "Penalty avg (feas%)",
		"Long best", "Long avg (feas%)", "Tuned P", "OPT proven",
	)

	for _, d := range densities {
		for id := 1; id <= b.instances; id++ {
			row, err := table2Instance(cfg, b, d, id)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, *row)
			tb.AddRow(
				row.Instance,
				report.Pct(row.SAIMBest),
				fmt.Sprintf("%s (%s)", report.Pct(row.SAIMAvg), report.F(row.SAIMFeas, 0)),
				report.Pct(row.PenBest),
				fmt.Sprintf("%s (%s)", report.Pct(row.PenAvg), report.F(row.PenFeas, 0)),
				report.Pct(row.LongBest),
				fmt.Sprintf("%s (%s)", report.Pct(row.LongAvg), report.F(row.LongFeas, 0)),
				fmt.Sprintf("%.0fdN", row.TunedAlpha),
				fmt.Sprintf("%v", row.Proven),
			)
		}
	}

	// Averages row (ignoring NaNs by column where a method found nothing).
	avg := func(get func(Table2Row) float64) float64 {
		var xs []float64
		for _, r := range out.Rows {
			if v := get(r); !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		return stats.Mean(xs)
	}
	tb.AddRow("Average",
		report.Pct(avg(func(r Table2Row) float64 { return r.SAIMBest })),
		fmt.Sprintf("%s (%s)", report.Pct(avg(func(r Table2Row) float64 { return r.SAIMAvg })),
			report.F(avg(func(r Table2Row) float64 { return r.SAIMFeas }), 0)),
		report.Pct(avg(func(r Table2Row) float64 { return r.PenBest })),
		fmt.Sprintf("%s (%s)", report.Pct(avg(func(r Table2Row) float64 { return r.PenAvg })),
			report.F(avg(func(r Table2Row) float64 { return r.PenFeas }), 0)),
		report.Pct(avg(func(r Table2Row) float64 { return r.LongBest })),
		fmt.Sprintf("%s (%s)", report.Pct(avg(func(r Table2Row) float64 { return r.LongAvg })),
			report.F(avg(func(r Table2Row) float64 { return r.LongFeas }), 0)),
		fmt.Sprintf("%.0fdN", avg(func(r Table2Row) float64 { return r.TunedAlpha })),
		"")
	out.Table = tb
	return out, nil
}

func table2Instance(cfg Config, b qkpBudget, d float64, id int) (*Table2Row, error) {
	seed := instanceSeed("qkp-t2", b.n, int(d*100), id, cfg.Seed)
	inst := qkp.Generate(b.n, d, id, seed)
	prob := buildQKP(inst)
	if cfg.Verbose {
		fmt.Fprintf(os.Stderr, "table2: %s\n", inst.Name)
	}

	// SAIM at the untuned heuristic P = 2dN.
	tr := &core.Trace{}
	saim, err := core.SolveContext(cfg.Context(), prob, core.Options{
		Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
		BetaMax: b.betaMax, Seed: seed ^ 0xa5a5, Trace: tr,
	})
	if err != nil {
		return nil, err
	}

	// Penalty method, same P and same sample budget.
	pen, err := anneal.SolvePenaltyContext(cfg.Context(), prob, saim.P, anneal.Options{
		Runs: b.runs, SweepsPerRun: b.sweeps, BetaMax: b.betaMax, Seed: seed ^ 0x5a5a,
	})
	if err != nil {
		return nil, err
	}

	// Tuned penalty method with few long runs: coarse tuning probes at a
	// quarter of the long budget, then the final long runs at the tuned P.
	tuned, _, err := anneal.TunePenaltyContext(cfg.Context(), prob, saim.P, 2, 0.2, 7, anneal.Options{
		Runs: b.longRuns, SweepsPerRun: b.longMCS / 4, BetaMax: b.betaMax, Seed: seed ^ 0x3c3c,
	})
	if err != nil {
		return nil, err
	}
	long, err := anneal.SolvePenaltyContext(cfg.Context(), prob, tuned.P, anneal.Options{
		Runs: b.longRuns, SweepsPerRun: b.longMCS, BetaMax: b.betaMax, Seed: seed ^ 0xc3c3,
	})
	if err != nil {
		return nil, err
	}

	opt, proven := qkpReference(cfg.Context(), inst, saim.BestCost, pen.BestCost, long.BestCost, tuned.BestCost)
	ss := statsFromTrace(tr, opt)
	dn := d * float64(prob.Ext.NTotal)
	row := &Table2Row{
		Instance: inst.Name,
		OptCost:  opt,
		Proven:   proven,
		SAIMBest: accuracyOf(saim.BestCost, opt),
		SAIMAvg:  ss.AvgAcc,
		SAIMFeas: ss.FeasPct,
		PenBest:  accuracyOf(pen.BestCost, opt),
		PenAvg:   meanAccuracy(pen.FeasibleCosts, opt),
		PenFeas:  pen.FeasibleRatio(),
		LongBest: accuracyOf(long.BestCost, opt),
		LongAvg:  meanAccuracy(long.FeasibleCosts, opt),
		LongFeas: long.FeasibleRatio(),
	}
	if dn > 0 {
		row.TunedAlpha = tuned.P / dn
	}
	return row, nil
}

// QKPCompareRow holds per-instance results for Tables III/IV (SAIM vs the
// best-SA and PT-DA stand-ins).
type QKPCompareRow struct {
	Instance   string
	OptCost    float64
	Proven     bool
	Optimality float64 // % of feasible SAIM samples that are optimal
	SAIMBest   float64
	SAIMAvg    float64
	SAIMFeas   float64
	BestSA     float64 // best accuracy of the tuned penalty-SA baseline
	PTDA       float64 // best accuracy of the parallel-tempering baseline
}

// QKPCompareResult bundles rows and the rendered table.
type QKPCompareResult struct {
	Rows  []QKPCompareRow
	Table *report.Table
}

// Table3 reproduces Table III: QKP at the paper's N=200 across densities
// 25/50/75/100%, comparing SAIM with best-SA [16] and PT-DA [17] stand-ins.
func Table3(cfg Config) (*QKPCompareResult, error) {
	return qkpCompare(cfg, "Table III", 200, []float64{0.25, 0.5, 0.75, 1.0})
}

// Table4 reproduces Table IV: QKP at the paper's N=300, densities 25/50%.
func Table4(cfg Config) (*QKPCompareResult, error) {
	return qkpCompare(cfg, "Table IV", 300, []float64{0.25, 0.5})
}

func qkpCompare(cfg Config, title string, paperN int, densities []float64) (*QKPCompareResult, error) {
	b := qkpBudgetFor(cfg.Preset, paperN)
	out := &QKPCompareResult{}
	tb := report.New(
		fmt.Sprintf("%s — QKP results (preset %s, N=%d)", title, cfg.Preset, b.n),
		"Instance", "Optimality%", "SAIM best", "SAIM avg (feas%)", "best SA", "PT-DA", "OPT proven",
	)
	for _, d := range densities {
		for id := 1; id <= b.instances; id++ {
			row, err := compareInstance(cfg, b, paperN, d, id)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, *row)
			tb.AddRow(
				row.Instance,
				report.Pct(row.Optimality),
				report.Pct(row.SAIMBest),
				fmt.Sprintf("%s (%s)", report.Pct(row.SAIMAvg), report.F(row.SAIMFeas, 0)),
				report.Pct(row.BestSA),
				report.Pct(row.PTDA),
				fmt.Sprintf("%v", row.Proven),
			)
		}
	}
	avg := func(get func(QKPCompareRow) float64) float64 {
		var xs []float64
		for _, r := range out.Rows {
			if v := get(r); !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		return stats.Mean(xs)
	}
	tb.AddRow("Average",
		report.Pct(avg(func(r QKPCompareRow) float64 { return r.Optimality })),
		report.Pct(avg(func(r QKPCompareRow) float64 { return r.SAIMBest })),
		fmt.Sprintf("%s (%s)", report.Pct(avg(func(r QKPCompareRow) float64 { return r.SAIMAvg })),
			report.F(avg(func(r QKPCompareRow) float64 { return r.SAIMFeas }), 0)),
		report.Pct(avg(func(r QKPCompareRow) float64 { return r.BestSA })),
		report.Pct(avg(func(r QKPCompareRow) float64 { return r.PTDA })),
		"")
	out.Table = tb
	return out, nil
}

func compareInstance(cfg Config, b qkpBudget, paperN int, d float64, id int) (*QKPCompareRow, error) {
	seed := instanceSeed(fmt.Sprintf("qkp-n%d", paperN), b.n, int(d*100), id, cfg.Seed)
	inst := qkp.Generate(b.n, d, id, seed)
	prob := buildQKP(inst)
	if cfg.Verbose {
		fmt.Fprintf(os.Stderr, "compare %d: %s\n", paperN, inst.Name)
	}

	tr := &core.Trace{}
	saim, err := core.SolveContext(cfg.Context(), prob, core.Options{
		Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
		BetaMax: b.betaMax, Seed: seed ^ 0xa5a5, Trace: tr,
	})
	if err != nil {
		return nil, err
	}

	// Best-SA stand-in: penalty SA at a tuned P with the long-run budget.
	tuned, _, err := anneal.TunePenaltyContext(cfg.Context(), prob, saim.P, 2, 0.2, 7, anneal.Options{
		Runs: b.longRuns, SweepsPerRun: b.longMCS / 4, BetaMax: b.betaMax, Seed: seed ^ 0x1111,
	})
	if err != nil {
		return nil, err
	}
	bestSA, err := anneal.SolvePenaltyContext(cfg.Context(), prob, tuned.P, anneal.Options{
		Runs: b.longRuns, SweepsPerRun: b.longMCS, BetaMax: b.betaMax, Seed: seed ^ 0x2222,
	})
	if err != nil {
		return nil, err
	}

	// PT-DA stand-in at the same tuned P.
	ptRes, err := pt.SolvePenaltyContext(cfg.Context(), prob, tuned.P, pt.Options{
		Replicas: b.ptRep, Sweeps: b.ptSweeps, BetaMin: 0.1, BetaMax: b.betaMax,
		SampleEvery: 10, Seed: seed ^ 0x4444,
	})
	if err != nil {
		return nil, err
	}

	opt, proven := qkpReference(cfg.Context(), inst, saim.BestCost, bestSA.BestCost, ptRes.BestCost, tuned.BestCost)
	ss := statsFromTrace(tr, opt)
	return &QKPCompareRow{
		Instance:   inst.Name,
		OptCost:    opt,
		Proven:     proven,
		Optimality: ss.OptimalPct,
		SAIMBest:   accuracyOf(saim.BestCost, opt),
		SAIMAvg:    ss.AvgAcc,
		SAIMFeas:   ss.FeasPct,
		BestSA:     accuracyOf(bestSA.BestCost, opt),
		PTDA:       accuracyOf(ptRes.BestCost, opt),
	}, nil
}
