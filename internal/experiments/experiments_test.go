package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/ising-machines/saim/internal/core"
)

func smokeCfg() Config { return Config{Preset: Smoke} }

func TestParsePreset(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Preset
	}{{"reduced", Reduced}, {"", Reduced}, {"paper", Paper}, {"smoke", Smoke}} {
		got, err := ParsePreset(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePreset(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePreset("bogus"); err == nil {
		t.Fatal("accepted bogus preset")
	}
}

func TestPresetString(t *testing.T) {
	if Reduced.String() != "reduced" || Paper.String() != "paper" || Smoke.String() != "smoke" {
		t.Fatal("preset strings wrong")
	}
}

func TestInstanceSeedDistinguishes(t *testing.T) {
	a := instanceSeed("qkp", 100, 25, 1, 0)
	b := instanceSeed("qkp", 100, 25, 2, 0)
	c := instanceSeed("qkp", 100, 50, 1, 0)
	d := instanceSeed("mkp", 100, 25, 1, 0)
	e := instanceSeed("qkp", 100, 25, 1, 7)
	seen := map[uint64]bool{}
	for _, s := range []uint64{a, b, c, d, e} {
		if seen[s] {
			t.Fatal("seed collision")
		}
		seen[s] = true
	}
	if a != instanceSeed("qkp", 100, 25, 1, 0) {
		t.Fatal("seed not deterministic")
	}
}

func TestStatsFromTrace(t *testing.T) {
	tr := &core.Trace{
		Cost:     []float64{-90, -100, -50, -100},
		Feasible: []bool{true, true, false, true},
	}
	ss := statsFromTrace(tr, -100)
	if ss.BestAcc != 100 {
		t.Fatalf("BestAcc = %v", ss.BestAcc)
	}
	wantAvg := (90.0 + 100 + 100) / 3
	if math.Abs(ss.AvgAcc-wantAvg) > 1e-9 {
		t.Fatalf("AvgAcc = %v, want %v", ss.AvgAcc, wantAvg)
	}
	if ss.FeasPct != 75 {
		t.Fatalf("FeasPct = %v", ss.FeasPct)
	}
	wantOpt := 100.0 * 2 / 3
	if math.Abs(ss.OptimalPct-wantOpt) > 1e-9 {
		t.Fatalf("OptimalPct = %v, want %v", ss.OptimalPct, wantOpt)
	}
}

func TestStatsFromTraceNoFeasible(t *testing.T) {
	tr := &core.Trace{Cost: []float64{-1}, Feasible: []bool{false}}
	ss := statsFromTrace(tr, -100)
	if ss.BestAcc != 0 || ss.FeasPct != 0 {
		t.Fatalf("stats = %+v", ss)
	}
}

func TestAccuracyHelpers(t *testing.T) {
	if !math.IsNaN(accuracyOf(math.Inf(1), -100)) {
		t.Fatal("infeasible accuracy should be NaN")
	}
	if accuracyOf(-50, -100) != 50 {
		t.Fatal("accuracyOf wrong")
	}
	if !math.IsNaN(meanAccuracy(nil, -100)) {
		t.Fatal("empty meanAccuracy should be NaN")
	}
	if meanAccuracy([]float64{-50, -100}, -100) != 75 {
		t.Fatal("meanAccuracy wrong")
	}
}

// Table II at smoke scale: SAIM must beat the same-budget penalty method on
// average — the paper's headline comparison.
func TestTable2ShapeHolds(t *testing.T) {
	res, err := Table2(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 densities × 2 instances
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var saim, pen float64
	var nSAIM, nPen int
	for _, r := range res.Rows {
		if !math.IsNaN(r.SAIMBest) {
			saim += r.SAIMBest
			nSAIM++
		}
		if !math.IsNaN(r.PenBest) {
			pen += r.PenBest
			nPen++
		}
	}
	if nSAIM == 0 {
		t.Fatal("SAIM never found a feasible solution")
	}
	saimAvg := saim / float64(nSAIM)
	penAvg := 0.0
	if nPen > 0 {
		penAvg = pen / float64(nPen)
	}
	// Count missing penalty solutions as the strongest possible failure.
	if nPen < len(res.Rows) {
		penAvg = penAvg * float64(nPen) / float64(len(res.Rows))
	}
	if saimAvg <= penAvg {
		t.Fatalf("SAIM best avg %.1f%% not above penalty best avg %.1f%%", saimAvg, penAvg)
	}
	if !strings.Contains(res.Table.String(), "Table II") {
		t.Fatal("table title missing")
	}
}

// Tables III/IV at smoke scale: SAIM should find feasible near-optimal
// solutions on every instance.
func TestTable3ShapeHolds(t *testing.T) {
	res, err := Table3(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 4 densities × 2 instances
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.SAIMBest) {
			t.Fatalf("%s: SAIM found nothing", r.Instance)
		}
		if r.SAIMBest < 95 {
			t.Fatalf("%s: SAIM best %.1f%% below 95%%", r.Instance, r.SAIMBest)
		}
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	res, err := Table4(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 densities × 2 instances
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.SAIMBest) || r.SAIMBest < 90 {
			t.Fatalf("%s: SAIM best %v", r.Instance, r.SAIMBest)
		}
	}
}

// Table V at smoke scale: SAIM and GA should both be near the certified
// optimum on tiny MKPs.
func TestTable5ShapeHolds(t *testing.T) {
	res, err := Table5(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Proven {
			t.Fatalf("%s: smoke MKP not proven optimal", r.Instance)
		}
		if math.IsNaN(r.SAIMBest) || r.SAIMBest < 90 {
			t.Fatalf("%s: SAIM best %v", r.Instance, r.SAIMBest)
		}
		if r.GAAcc < 99 {
			t.Fatalf("%s: GA accuracy %v", r.Instance, r.GAAcc)
		}
		if r.BBTime <= 0 {
			t.Fatalf("%s: missing B&B time", r.Instance)
		}
	}
}

func TestFig3TraceWellFormed(t *testing.T) {
	res, err := Fig3(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Cost) == 0 {
		t.Fatal("empty trace")
	}
	if len(res.Trace.Lambda[0]) != 1 {
		t.Fatalf("QKP should have 1 multiplier, got %d", len(res.Trace.Lambda[0]))
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.Trace.Cost)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(res.Trace.Cost)+1)
	}
	if !strings.HasPrefix(lines[0], "iteration,cost,feasible,energy,lambda0") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestFig5TraceHasOneLambdaPerConstraint(t *testing.T) {
	res, err := Fig5(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Lambda[0]) != 3 { // smoke MKP class has M=3
		t.Fatalf("lambda width = %d, want 3", len(res.Trace.Lambda[0]))
	}
	// λ must not be identically zero by the end (constraints bind).
	last := res.Trace.Lambda[len(res.Trace.Lambda)-1]
	all0 := true
	for _, v := range last {
		if v != 0 {
			all0 = false
		}
	}
	if all0 {
		t.Fatal("multipliers never moved")
	}
}

func TestFig4Runs(t *testing.T) {
	res, err := Fig4(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy == nil || res.Budget == nil {
		t.Fatal("missing tables")
	}
	q200, ok := res.SAIMQuartiles[200]
	if !ok {
		t.Fatal("missing N=200 quartiles")
	}
	if q200.Median < 80 {
		t.Fatalf("SAIM median accuracy %v suspiciously low", q200.Median)
	}
	if res.MeasuredSAIMMCS <= 0 {
		t.Fatal("missing measured MCS")
	}
	if !strings.Contains(res.Budget.String(), "7500x") {
		t.Fatal("budget table missing paper speedups")
	}
}

func TestTableIRendersPaperValues(t *testing.T) {
	tb := TableI(Config{Preset: Paper})
	s := tb.String()
	for _, want := range []string{"QKP", "MKP", "2dN", "5dN", "1000", "2000", "5000", "20.00", "0.05"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestWriteCSVEmptyTraceErrors(t *testing.T) {
	tr := &TraceResult{Trace: &core.Trace{}}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err == nil {
		t.Fatal("empty trace should not serialize")
	}
}

func TestFig4BudgetMatchesPreset(t *testing.T) {
	res, err := Fig4(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	b := qkpBudgetFor(Smoke, 300)
	if res.MeasuredSAIMMCS != int64(b.runs)*int64(b.sweeps) {
		t.Fatalf("measured MCS %d, want %d", res.MeasuredSAIMMCS, int64(b.runs)*int64(b.sweeps))
	}
}
