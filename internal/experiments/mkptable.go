package experiments

import (
	"fmt"
	"math"
	"os"
	"time"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/ga"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/report"
	"github.com/ising-machines/saim/internal/stats"
)

// mkpBudget bundles the per-preset MKP experiment parameters (paper
// Table I row "MKP" for the Paper preset).
type mkpBudget struct {
	classes   [][2]int // (N, M) pairs, paper: (100,5), (100,10), (250,5)
	instances int
	runs      int
	sweeps    int
	betaMax   float64
	eta       float64
	alpha     float64
	gaKids    int
	bbLimit   time.Duration
}

func mkpBudgetFor(p Preset) mkpBudget {
	switch p {
	case Paper:
		return mkpBudget{
			classes: [][2]int{{100, 5}, {100, 10}, {250, 5}}, instances: 10,
			runs: 5000, sweeps: 1000, betaMax: 50, eta: 0.05, alpha: 5,
			gaKids: 100000, bbLimit: time.Hour,
		}
	case Smoke:
		// η is scaled up relative to the paper's 0.05: the subgradient step
		// must be commensurate with the (smaller) residual scale of tiny
		// instances for λ to converge within the smoke budget.
		return mkpBudget{
			classes: [][2]int{{14, 3}}, instances: 2,
			runs: 150, sweeps: 120, betaMax: 50, eta: 0.2, alpha: 5,
			gaKids: 1500, bbLimit: 10 * time.Second,
		}
	default: // Reduced
		// η = 0.5 rather than the paper's 0.05: the subgradient step must
		// match the residual scale, which shrinks with instance size (the
		// paper's value suits N=100–250; at N≤50, η=0.05 never converges
		// within the budget — see EXPERIMENTS.md).
		return mkpBudget{
			classes: [][2]int{{30, 5}, {30, 10}, {50, 5}}, instances: 3,
			runs: 600, sweeps: 300, betaMax: 50, eta: 0.5, alpha: 5,
			gaKids: 20000, bbLimit: 30 * time.Second,
		}
	}
}

// Table5Row holds per-instance MKP results.
type Table5Row struct {
	Instance string
	// BBTime is the exact branch-and-bound solve time; Proven marks a
	// certified optimum (fallback to best-known otherwise).
	BBTime time.Duration
	Proven bool
	// OptCost is the reference optimum (negative).
	OptCost float64
	// Optimality is the % of feasible SAIM samples hitting OPT.
	Optimality float64
	// SAIM accuracy columns.
	SAIMBest, SAIMAvg, SAIMFeas float64
	// GAAvg is the accuracy of the Chu–Beasley GA baseline.
	GAAcc float64
}

// Table5Result bundles rows and the rendered table.
type Table5Result struct {
	Rows  []Table5Row
	Table *report.Table
}

// Table5 reproduces Table V: MKP classes solved by SAIM with the paper's
// MKP parameters (P = 5dN, η = 0.05, βmax = 50), against the exact B&B
// reference (intlinprog stand-in) and the Chu–Beasley GA.
func Table5(cfg Config) (*Table5Result, error) {
	b := mkpBudgetFor(cfg.Preset)
	out := &Table5Result{}
	tb := report.New(
		fmt.Sprintf("Table V — MKP results (preset %s, %d runs × %d MCS)", cfg.Preset, b.runs, b.sweeps),
		"Instance", "B&B time (s)", "Optimality%", "SAIM best", "SAIM avg (feas%)", "GA", "OPT proven",
	)
	for _, class := range b.classes {
		for id := 1; id <= b.instances; id++ {
			row, err := table5Instance(cfg, b, class[0], class[1], id)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, *row)
			tb.AddRow(
				row.Instance,
				report.F(row.BBTime.Seconds(), 2),
				report.Pct(row.Optimality),
				report.Pct(row.SAIMBest),
				fmt.Sprintf("%s (%s)", report.Pct(row.SAIMAvg), report.F(row.SAIMFeas, 1)),
				report.Pct(row.GAAcc),
				fmt.Sprintf("%v", row.Proven),
			)
		}
	}
	avg := func(get func(Table5Row) float64) float64 {
		var xs []float64
		for _, r := range out.Rows {
			if v := get(r); !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		return stats.Mean(xs)
	}
	tb.AddRow("Average",
		report.F(avg(func(r Table5Row) float64 { return r.BBTime.Seconds() }), 2),
		report.Pct(avg(func(r Table5Row) float64 { return r.Optimality })),
		report.Pct(avg(func(r Table5Row) float64 { return r.SAIMBest })),
		fmt.Sprintf("%s (%s)", report.Pct(avg(func(r Table5Row) float64 { return r.SAIMAvg })),
			report.F(avg(func(r Table5Row) float64 { return r.SAIMFeas }), 1)),
		report.Pct(avg(func(r Table5Row) float64 { return r.GAAcc })),
		"")
	out.Table = tb
	return out, nil
}

func table5Instance(cfg Config, b mkpBudget, n, m, id int) (*Table5Row, error) {
	seed := instanceSeed("mkp-t5", n, m, id, cfg.Seed)
	inst := mkp.Generate(n, m, 0.5, id, seed)
	prob := inst.ToProblem(constraint.Binary)
	if cfg.Verbose {
		fmt.Fprintf(os.Stderr, "table5: %s\n", inst.Name)
	}

	// Exact reference (the intlinprog stand-in); Table V reports its time.
	bb, err := exact.SolveMKPContext(cfg.Context(), inst, exact.Options{TimeLimit: b.bbLimit})
	if err != nil {
		return nil, err
	}

	tr := &core.Trace{}
	saim, err := core.SolveContext(cfg.Context(), prob, core.Options{
		Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
		BetaMax: b.betaMax, Seed: seed ^ 0xa5a5, Trace: tr,
	})
	if err != nil {
		return nil, err
	}

	gaRes, err := ga.SolveKnapsackContext(cfg.Context(), ga.FromMKP(inst), ga.Options{Population: 100, Children: b.gaKids, Seed: seed ^ 0x7777})
	if err != nil {
		return nil, err
	}

	// Reference optimum: certified B&B, else best-known.
	opt := bb.Cost
	proven := bb.Optimal
	for _, c := range []float64{saim.BestCost, gaRes.Cost} {
		if c < opt {
			opt = c
			proven = false
		}
	}

	ss := statsFromTrace(tr, opt)
	return &Table5Row{
		Instance:   inst.Name,
		BBTime:     bb.Elapsed,
		Proven:     proven,
		OptCost:    opt,
		Optimality: ss.OptimalPct,
		SAIMBest:   accuracyOf(saim.BestCost, opt),
		SAIMAvg:    ss.AvgAcc,
		SAIMFeas:   ss.FeasPct,
		GAAcc:      qkp.Accuracy(gaRes.Cost, opt),
	}, nil
}
