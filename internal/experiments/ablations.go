package experiments

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/report"
	"github.com/ising-machines/saim/internal/stats"
)

// This file holds the ablation studies of DESIGN.md §4 — experiments the
// paper implies but does not tabulate: sensitivity to the η step size and
// the α penalty coefficient (the "SAIM is less parameter-sensitive" claim),
// the slack-encoding comparison (binary vs. exact-range vs. unary), the
// λ ≥ 0 projection variant, and the artificial capacity-reduction trick
// for raising MKP feasibility that Section IV.B suggests.

// ablationSuite returns the shared QKP instance set for an ablation.
func ablationSuite(cfg Config) []*qkp.Instance {
	b := qkpBudgetFor(cfg.Preset, 100)
	var out []*qkp.Instance
	for _, d := range []float64{0.25, 0.5} {
		for id := 1; id <= b.instances; id++ {
			seed := instanceSeed("qkp-abl", b.n, int(d*100), id, cfg.Seed)
			out = append(out, qkp.Generate(b.n, d, id, seed))
		}
	}
	return out
}

// AblationRow is one sweep point of a 1-D ablation.
type AblationRow struct {
	Setting  string
	BestAcc  float64 // mean best accuracy across instances
	AvgAcc   float64 // mean avg-feasible accuracy
	FeasPct  float64 // mean feasible ratio
	ExtraVar int     // extra variables (encoding ablation only)
}

// AblationResult bundles rows and the rendered table.
type AblationResult struct {
	Rows  []AblationRow
	Table *report.Table
}

// runSuite solves every instance with per-instance options derived from f
// and aggregates the accuracy statistics.
func runSuite(cfg Config, insts []*qkp.Instance, enc constraint.SlackEncoding,
	mod func(o *core.Options)) (AblationRow, error) {
	b := qkpBudgetFor(cfg.Preset, 100)
	var bestAcc, avgAcc, feas []float64
	extra := 0
	for _, inst := range insts {
		prob := inst.ToProblem(enc)
		extra = prob.Ext.NTotal - prob.Ext.NOrig
		tr := &core.Trace{}
		o := core.Options{
			Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
			BetaMax: b.betaMax, Seed: instanceSeed("abl-run", inst.N, 0, 0, cfg.Seed) ^ 0xa5a5,
			Trace: tr,
		}
		mod(&o)
		res, err := core.SolveContext(cfg.Context(), prob, o)
		if err != nil {
			return AblationRow{}, err
		}
		opt, _ := qkpReference(cfg.Context(), inst, res.BestCost)
		ss := statsFromTrace(tr, opt)
		if !math.IsNaN(ss.BestAcc) && ss.FeasPct > 0 {
			bestAcc = append(bestAcc, ss.BestAcc)
			avgAcc = append(avgAcc, ss.AvgAcc)
		}
		feas = append(feas, ss.FeasPct)
	}
	row := AblationRow{
		BestAcc:  stats.Mean(bestAcc),
		AvgAcc:   stats.Mean(avgAcc),
		FeasPct:  stats.Mean(feas),
		ExtraVar: extra,
	}
	return row, nil
}

// AblationEta sweeps the Lagrange step size η across two orders of
// magnitude. The paper's robustness claim predicts a wide plateau.
func AblationEta(cfg Config) (*AblationResult, error) {
	insts := ablationSuite(cfg)
	etas := []float64{2, 8, 20, 80, 200}
	out := &AblationResult{}
	tb := report.New(fmt.Sprintf("Ablation — η sensitivity (preset %s)", cfg.Preset),
		"eta", "mean best acc", "mean avg acc", "mean feas%")
	for _, eta := range etas {
		row, err := runSuite(cfg, insts, constraint.Binary, func(o *core.Options) { o.Eta = eta })
		if err != nil {
			return nil, err
		}
		row.Setting = fmt.Sprintf("η=%g", eta)
		out.Rows = append(out.Rows, row)
		tb.AddRow(row.Setting, report.Pct(row.BestAcc), report.Pct(row.AvgAcc), report.Pct(row.FeasPct))
	}
	out.Table = tb
	return out, nil
}

// AblationAlpha sweeps the penalty coefficient α in P = α·d·N. SAIM should
// tolerate a wide range, unlike the bare penalty method whose tuned values
// span 40–500 (paper Table II).
func AblationAlpha(cfg Config) (*AblationResult, error) {
	insts := ablationSuite(cfg)
	alphas := []float64{0.5, 1, 2, 4, 8}
	out := &AblationResult{}
	tb := report.New(fmt.Sprintf("Ablation — α sensitivity, P = α·d·N (preset %s)", cfg.Preset),
		"alpha", "mean best acc", "mean avg acc", "mean feas%")
	for _, a := range alphas {
		row, err := runSuite(cfg, insts, constraint.Binary, func(o *core.Options) { o.Alpha = a })
		if err != nil {
			return nil, err
		}
		row.Setting = fmt.Sprintf("α=%g", a)
		out.Rows = append(out.Rows, row)
		tb.AddRow(row.Setting, report.Pct(row.BestAcc), report.Pct(row.AvgAcc), report.Pct(row.FeasPct))
	}
	out.Table = tb
	return out, nil
}

// AblationEncoding compares the three slack encodings on the same suite:
// the paper's binary (range overshoot, fewest bits), the exact-range
// bounded variant (HE-IM-style), and unary.
func AblationEncoding(cfg Config) (*AblationResult, error) {
	insts := ablationSuite(cfg)
	out := &AblationResult{}
	tb := report.New(fmt.Sprintf("Ablation — slack encodings (preset %s)", cfg.Preset),
		"encoding", "slack bits", "mean best acc", "mean avg acc", "mean feas%")
	for _, enc := range []constraint.SlackEncoding{constraint.Binary, constraint.Bounded, constraint.Unary} {
		row, err := runSuite(cfg, insts, enc, func(o *core.Options) {})
		if err != nil {
			return nil, err
		}
		row.Setting = enc.String()
		out.Rows = append(out.Rows, row)
		tb.AddRow(row.Setting, report.I(row.ExtraVar), report.Pct(row.BestAcc),
			report.Pct(row.AvgAcc), report.Pct(row.FeasPct))
	}
	out.Table = tb
	return out, nil
}

// AblationProjection compares plain subgradient updates against λ ≥ 0
// projection (inequality multipliers are sign-constrained in exact duality;
// the paper's plain ascent works regardless).
func AblationProjection(cfg Config) (*AblationResult, error) {
	insts := ablationSuite(cfg)
	out := &AblationResult{}
	tb := report.New(fmt.Sprintf("Ablation — λ projection (preset %s)", cfg.Preset),
		"update rule", "mean best acc", "mean avg acc", "mean feas%")
	for _, proj := range []bool{false, true} {
		row, err := runSuite(cfg, insts, constraint.Binary, func(o *core.Options) { o.NonNegative = proj })
		if err != nil {
			return nil, err
		}
		if proj {
			row.Setting = "projected λ≥0"
		} else {
			row.Setting = "plain (paper)"
		}
		out.Rows = append(out.Rows, row)
		tb.AddRow(row.Setting, report.Pct(row.BestAcc), report.Pct(row.AvgAcc), report.Pct(row.FeasPct))
	}
	out.Table = tb
	return out, nil
}

// AblationCapacity implements the feasibility-raising trick Section IV.B
// cites from [16]: solve MKP against artificially reduced capacities
// B' = γ·B (γ ≤ 1) so measured samples satisfy the true constraints more
// often, at some cost in attainable value.
func AblationCapacity(cfg Config) (*AblationResult, error) {
	b := mkpBudgetFor(cfg.Preset)
	class := b.classes[0]
	gammas := []float64{1.0, 0.97, 0.94, 0.90}
	out := &AblationResult{}
	tb := report.New(fmt.Sprintf("Ablation — MKP capacity reduction B'=γB (preset %s)", cfg.Preset),
		"gamma", "mean best acc", "mean avg acc", "mean feas%")
	for _, gamma := range gammas {
		var bestAcc, avgAcc, feas []float64
		for id := 1; id <= b.instances; id++ {
			seed := instanceSeed("mkp-cap", class[0], class[1], id, cfg.Seed)
			inst := mkp.Generate(class[0], class[1], 0.5, id, seed)
			shrunk := shrinkCapacities(inst, gamma)
			prob := shrunk.ToProblem(constraint.Binary)
			// Feasibility and cost must be judged against the TRUE
			// instance, not the shrunken one.
			trueProb := trueCostProblem(prob, inst)
			tr := &core.Trace{}
			res, err := core.SolveContext(cfg.Context(), trueProb, core.Options{
				Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
				BetaMax: b.betaMax, Seed: seed ^ 0xa5a5, Trace: tr,
			})
			if err != nil {
				return nil, err
			}
			opt := res.BestCost // best-known within this ablation
			ss := statsFromTrace(tr, opt)
			if ss.FeasPct > 0 {
				bestAcc = append(bestAcc, ss.BestAcc)
				avgAcc = append(avgAcc, ss.AvgAcc)
			}
			feas = append(feas, ss.FeasPct)
		}
		row := AblationRow{
			Setting: fmt.Sprintf("γ=%.2f", gamma),
			BestAcc: stats.Mean(bestAcc),
			AvgAcc:  stats.Mean(avgAcc),
			FeasPct: stats.Mean(feas),
		}
		out.Rows = append(out.Rows, row)
		tb.AddRow(row.Setting, report.Pct(row.BestAcc), report.Pct(row.AvgAcc), report.Pct(row.FeasPct))
	}
	out.Table = tb
	return out, nil
}

// shrinkCapacities returns a copy of inst with capacities scaled by gamma.
func shrinkCapacities(inst *mkp.Instance, gamma float64) *mkp.Instance {
	out := &mkp.Instance{
		Name: inst.Name + fmt.Sprintf("-g%.2f", gamma),
		N:    inst.N, M: inst.M,
		H: append([]int(nil), inst.H...),
		A: make([][]int, inst.M),
		B: make([]int, inst.M),
	}
	for i := 0; i < inst.M; i++ {
		out.A[i] = append([]int(nil), inst.A[i]...)
		out.B[i] = int(gamma * float64(inst.B[i]))
	}
	return out
}

// trueCostProblem rebinds the problem's feasibility/cost bookkeeping to the
// original instance while keeping the (shrunken) energy landscape: samples
// are judged against the true constraints the user cares about.
func trueCostProblem(p *core.Problem, truth *mkp.Instance) *core.Problem {
	origSys := truth.System()
	ext := *p.Ext
	ext.Orig = origSys
	return &core.Problem{
		Objective: p.Objective,
		Ext:       &ext,
		Cost:      func(x ising.Bits) float64 { return truth.Cost(x) },
		Density:   p.Density,
	}
}
