package experiments

import (
	"fmt"
	"io"
	"math"
	"os"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/report"
	"github.com/ising-machines/saim/internal/stats"
)

// TraceResult holds the per-iteration series behind Figures 3 and 5: the
// measured sample cost (with feasibility flags) and the Lagrange multiplier
// trajectories.
type TraceResult struct {
	Instance string
	P        float64
	Trace    *core.Trace
	// OptCost is the reference optimum for context (best-known).
	OptCost float64
	// Summary is a short rendered table (transient length, final λ, ...).
	Summary *report.Table
}

// Fig3 reproduces Fig. 3b/3c: the cost and Lagrange-multiplier evolution of
// one SAIM run on the QKP instance named like the paper's 300-50-8
// (reduced-size analog under non-Paper presets).
func Fig3(cfg Config) (*TraceResult, error) {
	b := qkpBudgetFor(cfg.Preset, 300)
	const d, id = 0.5, 8
	seed := instanceSeed("qkp-n300", b.n, 50, id, cfg.Seed)
	inst := qkp.Generate(b.n, d, id, seed)
	prob := buildQKP(inst)
	if cfg.Verbose {
		fmt.Fprintf(os.Stderr, "fig3: %s\n", inst.Name)
	}
	tr := &core.Trace{}
	res, err := core.SolveContext(cfg.Context(), prob, core.Options{
		Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
		BetaMax: b.betaMax, Seed: seed ^ 0xa5a5, Trace: tr,
	})
	if err != nil {
		return nil, err
	}
	opt, _ := qkpReference(cfg.Context(), inst, res.BestCost)
	return traceResult(inst.Name, "Fig. 3", res, tr, opt, b.sweeps), nil
}

// Fig5 reproduces Fig. 5a/5b: the MKP SAIM trace with one λ series per
// knapsack constraint, on the analog of the paper's 250-5-8 instance.
func Fig5(cfg Config) (*TraceResult, error) {
	b := mkpBudgetFor(cfg.Preset)
	// Largest configured class, instance id 8 as in the paper.
	class := b.classes[len(b.classes)-1]
	const id = 8
	seed := instanceSeed("mkp-t5", class[0], class[1], id, cfg.Seed)
	inst := mkp.Generate(class[0], class[1], 0.5, id, seed)
	prob := inst.ToProblem(constraint.Binary)
	if cfg.Verbose {
		fmt.Fprintf(os.Stderr, "fig5: %s\n", inst.Name)
	}
	tr := &core.Trace{}
	res, err := core.SolveContext(cfg.Context(), prob, core.Options{
		Alpha: b.alpha, Eta: b.eta, Iterations: b.runs, SweepsPerRun: b.sweeps,
		BetaMax: b.betaMax, Seed: seed ^ 0xa5a5, Trace: tr,
	})
	if err != nil {
		return nil, err
	}
	opt := res.BestCost
	return traceResult(inst.Name, "Fig. 5", res, tr, opt, b.sweeps), nil
}

func traceResult(name, fig string, res *core.Result, tr *core.Trace, opt float64, sweepsPerRun int) *TraceResult {
	out := &TraceResult{Instance: name, P: res.P, Trace: tr, OptCost: opt}
	// Transient length: first iteration with a feasible sample.
	first := -1
	for i, f := range tr.Feasible {
		if f {
			first = i
			break
		}
	}
	tb := report.New(fmt.Sprintf("%s — SAIM trace for instance %s", fig, name),
		"metric", "value")
	tb.AddRow("P", report.F(res.P, 1))
	tb.AddRow("iterations", report.I(res.Iterations))
	tb.AddRow("MCS per run", report.I(sweepsPerRun))
	tb.AddRow("first feasible iteration", report.I(first))
	tb.AddRow("feasible ratio %", report.F(res.FeasibleRatio(), 1))
	tb.AddRow("best cost", report.F(res.BestCost, 1))
	tb.AddRow("reference cost", report.F(opt, 1))
	for m := 0; m < len(res.Lambda); m++ {
		tb.AddRow(fmt.Sprintf("final lambda[%d]", m), report.F(res.Lambda[m], 3))
	}
	out.Summary = tb
	return out
}

// WriteCSV emits the trace as CSV: iteration, cost, feasible, energy, and
// one column per Lagrange multiplier. This is the file to plot for the
// staircase curves of Figs. 3c and 5b.
func (t *TraceResult) WriteCSV(w io.Writer) error {
	tr := t.Trace
	if len(tr.Cost) == 0 {
		return fmt.Errorf("experiments: empty trace")
	}
	m := len(tr.Lambda[0])
	header := "iteration,cost,feasible,energy"
	for i := 0; i < m; i++ {
		header += fmt.Sprintf(",lambda%d", i)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for k := range tr.Cost {
		feas := 0
		if tr.Feasible[k] {
			feas = 1
		}
		line := fmt.Sprintf("%d,%g,%d,%g", k, tr.Cost[k], feas, tr.Energy[k])
		for i := 0; i < m; i++ {
			line += fmt.Sprintf(",%g", tr.Lambda[k][i])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Fig4Result bundles the accuracy-quartile table (Fig. 4a) and the
// sample-budget table (Fig. 4b).
type Fig4Result struct {
	Accuracy *report.Table
	Budget   *report.Table
	// SAIMQuartiles per size class, for tests.
	SAIMQuartiles map[int]stats.Quartiles
	// MeasuredSAIMMCS is the per-instance SAIM sample budget actually
	// spent in this run.
	MeasuredSAIMMCS int64
}

// Fig4 reproduces Fig. 4: (a) accuracy quartiles of SAIM vs the best-SA
// and PT-DA stand-ins across the Table III/IV suites, and (b) the Monte-
// Carlo-sweep budgets — both the paper's reported figures (2M vs 200M vs
// 19.5G vs 15G, i.e. 100× and 7,500–9,750× more samples than SAIM) and the
// budgets measured in this run.
func Fig4(cfg Config) (*Fig4Result, error) {
	out := &Fig4Result{SAIMQuartiles: map[int]stats.Quartiles{}}

	acc := report.New(fmt.Sprintf("Fig. 4a — QKP accuracy quartiles (preset %s)", cfg.Preset),
		"size class", "method", "min", "Q1", "median", "Q3", "max")

	collect := func(paperN int, rows []QKPCompareRow) {
		var saimAvg, bestSA, ptda []float64
		for _, r := range rows {
			if !math.IsNaN(r.SAIMAvg) {
				saimAvg = append(saimAvg, r.SAIMAvg)
			}
			if !math.IsNaN(r.BestSA) {
				bestSA = append(bestSA, r.BestSA)
			}
			if !math.IsNaN(r.PTDA) {
				ptda = append(ptda, r.PTDA)
			}
		}
		for _, mq := range []struct {
			name string
			xs   []float64
		}{
			{"SAIM avg", saimAvg},
			{"best SA", bestSA},
			{"PT-DA", ptda},
		} {
			q := stats.Summarize(mq.xs)
			acc.AddRow(fmt.Sprintf("N=%d", paperN), mq.name,
				report.Pct(q.Min), report.Pct(q.Q1), report.Pct(q.Median),
				report.Pct(q.Q3), report.Pct(q.Max))
			if mq.name == "SAIM avg" {
				out.SAIMQuartiles[paperN] = q
			}
		}
	}

	t3, err := Table3(cfg)
	if err != nil {
		return nil, err
	}
	collect(200, t3.Rows)
	t4, err := Table4(cfg)
	if err != nil {
		return nil, err
	}
	collect(300, t4.Rows)

	// Fig. 4b: sample budgets. Paper-reported values plus this run's.
	b := qkpBudgetFor(cfg.Preset, 300)
	measured := int64(b.runs) * int64(b.sweeps)
	out.MeasuredSAIMMCS = measured
	bud := report.New("Fig. 4b — Monte-Carlo sweep budgets",
		"method", "paper MCS", "paper speedup vs SAIM", "this run MCS")
	bud.AddRow("SAIM", "2e6", "1x", fmt.Sprintf("%d", measured))
	bud.AddRow("best SA [16]", "2e8", "100x", fmt.Sprintf("%d", int64(b.longRuns)*int64(b.longMCS)))
	bud.AddRow("HE-IM [15]", "1.95e10", "9750x", "-")
	bud.AddRow("PT-DA [17]", "1.5e10", "7500x", fmt.Sprintf("%d", int64(b.ptRep)*int64(b.ptSweeps)))
	out.Accuracy = acc
	out.Budget = bud
	return out, nil
}

// TableI renders the paper's Table I (hyper-parameters) for a preset,
// documenting exactly which values this run uses.
func TableI(cfg Config) *report.Table {
	qb := qkpBudgetFor(cfg.Preset, 100)
	mb := mkpBudgetFor(cfg.Preset)
	tb := report.New(fmt.Sprintf("Table I — experiment parameters (preset %s)", cfg.Preset),
		"experiment", "penalty", "MCS/run", "runs", "betaMax", "eta")
	tb.AddRow("QKP", fmt.Sprintf("%.0fdN", qb.alpha), report.I(qb.sweeps), report.I(qb.runs),
		report.F(qb.betaMax, 0), report.F(qb.eta, 2))
	tb.AddRow("MKP", fmt.Sprintf("%.0fdN", mb.alpha), report.I(mb.sweeps), report.I(mb.runs),
		report.F(mb.betaMax, 0), report.F(mb.eta, 2))
	return tb
}
