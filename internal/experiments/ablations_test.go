package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/ising-machines/saim/internal/mkp"
)

func TestAblationEtaPlateau(t *testing.T) {
	res, err := AblationEta(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's robustness claim: every η in the sweep (spanning two
	// orders of magnitude) must still produce good best-accuracies.
	for _, r := range res.Rows {
		if math.IsNaN(r.BestAcc) || r.BestAcc < 90 {
			t.Fatalf("%s: best acc %v — plateau broken", r.Setting, r.BestAcc)
		}
	}
	if !strings.Contains(res.Table.String(), "η=20") {
		t.Fatal("missing paper setting in table")
	}
}

func TestAblationAlphaTolerant(t *testing.T) {
	res, err := AblationAlpha(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, r := range res.Rows {
		if !math.IsNaN(r.BestAcc) && r.BestAcc >= 90 {
			ok++
		}
	}
	// SAIM tolerates most of a 16× α range (the bare penalty method needs
	// instance-specific values spanning 40–500).
	if ok < 4 {
		t.Fatalf("only %d/5 α settings reached 90%% best accuracy", ok)
	}
}

func TestAblationEncodingVariableCounts(t *testing.T) {
	res, err := AblationEncoding(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Setting] = r
	}
	// Binary and bounded use O(log b) bits; unary uses b bits.
	if byName["unary"].ExtraVar <= byName["binary"].ExtraVar {
		t.Fatalf("unary (%d) should need more slack bits than binary (%d)",
			byName["unary"].ExtraVar, byName["binary"].ExtraVar)
	}
	if byName["bounded"].ExtraVar > byName["binary"].ExtraVar+1 {
		t.Fatalf("bounded (%d) should be within one bit of binary (%d)",
			byName["bounded"].ExtraVar, byName["binary"].ExtraVar)
	}
	// The compact encodings must work well.
	for _, name := range []string{"binary", "bounded"} {
		if byName[name].BestAcc < 90 {
			t.Fatalf("%s encoding best acc %v", name, byName[name].BestAcc)
		}
	}
}

func TestAblationProjectionBothWork(t *testing.T) {
	res, err := AblationProjection(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.BestAcc) || r.BestAcc < 90 {
			t.Fatalf("%s: best acc %v", r.Setting, r.BestAcc)
		}
	}
}

func TestAblationCapacityRaisesFeasibility(t *testing.T) {
	res, err := AblationCapacity(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Shrinking capacities (γ < 1) should raise the feasible-sample ratio
	// versus γ=1 — the trend Section IV.B predicts. Compare the strongest
	// shrink against the baseline.
	base := res.Rows[0]
	strongest := res.Rows[len(res.Rows)-1]
	if strongest.FeasPct <= base.FeasPct {
		t.Fatalf("γ=%s feas %v not above γ=1 feas %v",
			strongest.Setting, strongest.FeasPct, base.FeasPct)
	}
}

func TestShrinkCapacitiesCopiesDeeply(t *testing.T) {
	cfg := smokeCfg()
	b := mkpBudgetFor(cfg.Preset)
	class := b.classes[0]
	seed := instanceSeed("mkp-cap", class[0], class[1], 1, 0)
	inst := mkp.Generate(class[0], class[1], 0.5, 1, seed)
	shrunk := shrinkCapacities(inst, 0.9)
	shrunk.A[0][0] = -999
	shrunk.B[0] = -999
	if inst.A[0][0] == -999 || inst.B[0] == -999 {
		t.Fatal("shrinkCapacities aliased the original")
	}
	for i := range inst.B {
		want := int(0.9 * float64(inst.B[i]))
		if i == 0 {
			continue // mutated above
		}
		if shrunk.B[i] != want {
			t.Fatalf("capacity %d = %d, want %d", i, shrunk.B[i], want)
		}
	}
}
