package report

import (
	"math"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	// Columns align: "value" column of row 1 and row 2 start at same offset.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestAddRowPanicsOnTooMany(t *testing.T) {
	tb := New("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("accepted oversized row")
		}
	}()
	tb.AddRow("1", "2")
}

func TestFormatHelpers(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.2345, 2))
	}
	if F(math.NaN(), 2) != "-" || F(math.Inf(1), 2) != "-" || F(math.Inf(-1), 2) != "-" {
		t.Fatal("non-finite formatting wrong")
	}
	if I(42) != "42" {
		t.Fatal("I broken")
	}
	if Pct(99.95) != "99.9" && Pct(99.95) != "100.0" {
		t.Fatalf("Pct = %q", Pct(99.95))
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("ignored title", "x", "y")
	tb.AddRow("1", "a,b")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "x,y\n") {
		t.Fatalf("csv = %q", got)
	}
	if !strings.Contains(got, `"a,b"`) {
		t.Fatalf("csv did not quote comma cell: %q", got)
	}
	if strings.Contains(got, "ignored title") {
		t.Fatal("csv leaked title")
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Fatalf("leading blank line: %q", out)
	}
}
