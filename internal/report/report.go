// Package report renders experiment results as fixed-width text tables and
// CSV, the two formats the experiment harness emits. It is intentionally
// small: a Table is a header plus rows of strings, with numeric helpers for
// the common cell types.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows for rendering.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows panic (that is a programming error in the driver).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("report: row with %d cells exceeds %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// F formats a float with the given number of decimals, rendering NaN and
// infinities as "-".
func F(v float64, decimals int) string {
	if v != v || v > 1e300 || v < -1e300 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// Pct formats an accuracy/percentage with one decimal.
func Pct(v float64) string { return F(v, 1) }

// Render writes the table as aligned fixed-width text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (header first, no title line).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string (fixed-width form).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}
