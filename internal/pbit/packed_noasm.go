//go:build !amd64

package pbit

// Non-amd64 builds run the portable reference kernels directly.

//saim:hotpath
func packedWant(beta float64, f, nz []float64) uint64 {
	return packedWantGo(beta, f, nz)
}

//saim:hotpath
func flipApplyDense(row []float64, fields []float64, d *[Lanes]float64, groups []int32) {
	flipApplyDenseGo(row, fields, d, groups)
}

//saim:hotpath
func flipApplyCSR(cols []int32, ws []float64, fields []float64, d *[Lanes]float64, groups []int32) {
	flipApplyCSRGo(cols, ws, fields, d, groups)
}

//saim:hotpath
func flipApplySingleDense(row []float64, fieldsLane []float64, delta float64) {
	flipApplySingleDenseGo(row, fieldsLane, delta)
}

//saim:hotpath
func flipApplySingleCSR(cols []int32, ws []float64, fieldsLane []float64, delta float64) {
	flipApplySingleCSRGo(cols, ws, fieldsLane, delta)
}
