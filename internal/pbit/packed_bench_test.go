package pbit

import (
	"testing"

	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
)

// The packed benchmarks measure aggregate 64-replica throughput: each
// BenchmarkPackedAnneal* op advances 64 replicas through one full
// BenchmarkAnnealRun-class annealing run (1000 sweeps, linear β 0→10),
// and each *ScalarPool64 baseline does the same work on 64 scalar
// machines — the replica pool's cost before multi-spin coding. Speedup =
// baseline ns/op ÷ packed ns/op.

func BenchmarkPackedAnnealDense(b *testing.B) {
	src := rng.New(7)
	model := randomModel(src, 100)
	m := NewPacked(model, rng.New(9))
	sched := schedule.Linear{Start: 0, End: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AnnealRun(sched, 1000)
	}
}

func BenchmarkPackedAnnealDenseScalarPool64(b *testing.B) {
	src := rng.New(7)
	model := randomModel(src, 100)
	base := rng.New(9)
	ms := make([]*Machine, Lanes)
	for r := range ms {
		ms[r] = New(model, base.Split())
	}
	sched := schedule.Linear{Start: 0, End: 10}
	buf := make([]int8, model.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			m.AnnealInto(buf, sched, 1000)
		}
	}
}

func BenchmarkPackedAnnealSparse(b *testing.B) {
	src := rng.New(7)
	model := sparseModel(src, 300, 0.05)
	m := NewPackedSparse(model, rng.New(9))
	sched := schedule.Linear{Start: 0, End: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AnnealRun(sched, 1000)
	}
}

func BenchmarkPackedAnnealSparseScalarPool64(b *testing.B) {
	src := rng.New(7)
	model := sparseModel(src, 300, 0.05)
	base := rng.New(9)
	ms := make([]*SparseMachine, Lanes)
	for r := range ms {
		ms[r] = NewSparse(model, base.Split())
	}
	sched := schedule.Linear{Start: 0, End: 10}
	buf := make([]int8, model.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			m.AnnealInto(buf, sched, 1000)
		}
	}
}

// Sweep-only microbenchmarks at a fixed mid-anneal temperature mix,
// isolating the kernel from Randomize/RecomputeFields.

func BenchmarkPackedSweepDense(b *testing.B) {
	src := rng.New(7)
	model := randomModel(src, 100)
	m := NewPacked(model, rng.New(9))
	m.Randomize()
	sched := schedule.Linear{Start: 0.1, End: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep(sched.Beta(i%200, 200))
	}
}

func BenchmarkPackedSweepDenseScalarPool64(b *testing.B) {
	src := rng.New(7)
	model := randomModel(src, 100)
	base := rng.New(9)
	ms := make([]*Machine, Lanes)
	for r := range ms {
		ms[r] = New(model, base.Split())
		ms[r].Randomize()
	}
	sched := schedule.Linear{Start: 0.1, End: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		beta := sched.Beta(i%200, 200)
		for _, m := range ms {
			m.Sweep(beta)
		}
	}
}
