package pbit

import (
	"fmt"
	"math/bits"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
)

// PackedSparseMachine is the CSR variant of PackedMachine: 64 replicas
// swept in lockstep over the flat three-array coupling layout of
// SparseMachine. Per lane it reproduces SparseMachine's trajectory
// bit-for-bit given the same source — which, by the existing golden tests,
// is also the dense machine's trajectory.
type PackedSparseMachine struct {
	packedCore
	rowPtr []int32
	colIdx []int32
	weight []float64
}

// NewPackedSparse builds a packed CSR machine from the model's non-zero
// couplings, per-lane sources split off src in lane order.
func NewPackedSparse(model *ising.Model, src *rng.Source) *PackedSparseMachine {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("pbit: invalid model: %v", err))
	}
	rowPtr, colIdx, weight := buildCSR(model)
	m := &PackedSparseMachine{
		packedCore: newPackedCore(model.H, src),
		rowPtr:     rowPtr,
		colIdx:     colIdx,
		weight:     weight,
	}
	m.RecomputeFields()
	return m
}

// row returns the CSR column/weight spans of spin i.
func (m *PackedSparseMachine) row(i int) ([]int32, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.weight[lo:hi]
}

// RecomputeFields rebuilds every lane's local fields from scratch in the
// CSR entry order SparseMachine.RecomputeFields uses per lane.
func (m *PackedSparseMachine) RecomputeFields() {
	m.spinFloats(m.noise) // noise is dead outside Sweep; reuse as scratch
	for i := 0; i < m.n; i++ {
		acc := m.fields[i*Lanes : i*Lanes+Lanes]
		copy(acc, m.hb[i*Lanes:i*Lanes+Lanes])
		cols, ws := m.row(i)
		for k, j := range cols {
			w := ws[k]
			sf := m.noise[int(j)*Lanes : int(j)*Lanes+Lanes]
			for r := 0; r < Lanes; r++ {
				acc[r] += w * sf[r]
			}
		}
	}
}

// SetAllLanesState installs one configuration on every lane.
func (m *PackedSparseMachine) SetAllLanesState(s ising.Spins) {
	m.setAllLanesBits(s)
	m.RecomputeFields()
}

// Randomize draws a fresh uniform configuration per lane.
func (m *PackedSparseMachine) Randomize() {
	m.randomizeBits()
	m.RecomputeFields()
}

// Sweep runs one Monte-Carlo sweep of all 64 lanes over the CSR rows.
//
//saim:hotpath
func (m *PackedSparseMachine) Sweep(beta float64) {
	n := m.n
	if n == 0 {
		m.sweeps++
		return
	}
	m.fillNoise()
	for i := 0; i < n; i++ {
		base := i * Lanes
		want := packedWant(beta, m.fields[base:base+Lanes], m.noise[base:base+Lanes])
		fl := want ^ m.states[i]
		if fl == 0 {
			continue
		}
		m.states[i] = want
		cols, ws := m.row(i)
		if fl&(fl-1) == 0 {
			r := bits.TrailingZeros64(fl)
			delta := -2.0
			if want>>uint(r)&1 != 0 {
				delta = 2.0
			}
			flipApplySingleCSR(cols, ws, m.fields[r:], delta)
		} else {
			ng := buildDeltas(fl, want, &m.d, &m.groups)
			flipApplyCSR(cols, ws, m.fields, &m.d, m.groups[:ng])
		}
	}
	m.sweeps++
}

// AnnealRun runs one annealing run on every lane from a fresh random start.
func (m *PackedSparseMachine) AnnealRun(sched schedule.Schedule, sweeps int) {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
}

// AnnealFromRun continues annealing from the current lane states.
func (m *PackedSparseMachine) AnnealFromRun(sched schedule.Schedule, sweeps int) {
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
}

// LaneFieldConsistencyError returns the worst drift between lane r's
// incremental fields and a from-scratch recomputation (test hook).
func (m *PackedSparseMachine) LaneFieldConsistencyError(r int) float64 {
	worst := 0.0
	for i := 0; i < m.n; i++ {
		acc := m.hb[i*Lanes+r]
		cols, ws := m.row(i)
		for k, j := range cols {
			acc += ws[k] * float64(int64(m.states[j]>>r&1)*2-1)
		}
		d := m.fields[i*Lanes+r] - acc
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
