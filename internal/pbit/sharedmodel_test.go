package pbit

import (
	"sync"
	"testing"

	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Two machines over ONE model must be able to reprogram biases and sweep
// concurrently: UpdateBiases is copy-on-write over a private h, so nothing
// shared is written. Run under -race this pins the PR 9 aliasing fix — the
// old in-place model.H mutation made parallel tempering's shared-model
// replica ladder a latent data race.
func TestSharedModelUpdateBiasesRaceFree(t *testing.T) {
	src := rng.New(11)
	model := randomModel(src, 24)
	a := New(model, src.Split())
	b := New(model, src.Split())
	sp := NewSparse(model, src.Split())

	var wg sync.WaitGroup
	for _, m := range []interface {
		UpdateBiases(vecmat.Vec)
		Sweep(float64)
	}{a, b, sp} {
		wg.Add(1)
		go func(m interface {
			UpdateBiases(vecmat.Vec)
			Sweep(float64)
		}) {
			defer wg.Done()
			h := vecmat.NewVec(24)
			for k := 0; k < 50; k++ {
				for i := range h {
					h[i] = float64(k%5) - 2
				}
				m.UpdateBiases(h)
				m.Sweep(1.0)
			}
		}(m)
	}
	wg.Wait()

	// Each machine's incremental fields must still be self-consistent.
	if err := a.FieldConsistencyError(); err > 1e-9 {
		t.Fatalf("machine a drift %v", err)
	}
	if err := b.FieldConsistencyError(); err > 1e-9 {
		t.Fatalf("machine b drift %v", err)
	}
	if err := sp.FieldConsistencyError(); err > 1e-9 {
		t.Fatalf("sparse machine drift %v", err)
	}
}
