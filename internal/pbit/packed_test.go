package pbit

import (
	"testing"

	"github.com/ising-machines/saim/internal/cpufeat"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// scalarFleet builds 64 scalar machines whose sources are split off a
// fresh source with the same seed the packed machine was given — Split is
// deterministic, so lane r's source and machine r's source carry identical
// streams.
func scalarFleet(model *ising.Model, seed uint64, sparse bool) []interface {
	State() ising.Spins
	Randomize()
	Sweep(float64)
	SetState(ising.Spins)
	UpdateBiases(vecmat.Vec)
} {
	base := rng.New(seed)
	fleet := make([]interface {
		State() ising.Spins
		Randomize()
		Sweep(float64)
		SetState(ising.Spins)
		UpdateBiases(vecmat.Vec)
	}, Lanes)
	for r := range fleet {
		if sparse {
			fleet[r] = NewSparse(model, base.Split())
		} else {
			fleet[r] = New(model, base.Split())
		}
	}
	return fleet
}

// trajectoryBetas spans the unsaturated regime, the mixed regime, and deep
// saturation (β·I far beyond ±5.06), so both the Padé path and the
// all-saturated fast path of the packed threshold kernel are exercised.
func trajectoryBetas() []float64 {
	betas := make([]float64, 0, 40)
	for k := 0; k < 40; k++ {
		betas = append(betas, 0.05+float64(k)*0.25)
	}
	return betas
}

type packedAny interface {
	PackedKernel
	RecomputeFields()
	LaneFieldConsistencyError(r int) float64
}

// runDifferential sweeps packed and scalar fleets in lockstep and requires
// every lane's state to equal its scalar twin's after every sweep, and
// every lane's fields to stay numerically equal (±0.0 sign differences are
// allowed — they are provably invisible to all threshold decisions).
func runDifferential(t *testing.T, pm packedAny, fleet []interface {
	State() ising.Spins
	Randomize()
	Sweep(float64)
	SetState(ising.Spins)
	UpdateBiases(vecmat.Vec)
}, fields func(i, r int) float64, scalarField func(m interface{}, i int) float64) {
	t.Helper()
	n := pm.N()
	pm.Randomize()
	for _, m := range fleet {
		m.Randomize()
	}
	got := ising.NewSpins(n)
	for step, beta := range trajectoryBetas() {
		pm.Sweep(beta)
		for r, m := range fleet {
			m.Sweep(beta)
			pm.LaneStateInto(got, r)
			want := m.State()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d lane %d spin %d: packed %d scalar %d", step, r, i, got[i], want[i])
				}
			}
		}
	}
	for r, m := range fleet {
		for i := 0; i < n; i++ {
			if pf, sf := fields(i, r), scalarField(m, i); pf != sf {
				t.Fatalf("lane %d spin %d: packed field %v scalar field %v", r, i, pf, sf)
			}
		}
		if drift := pm.LaneFieldConsistencyError(r); drift > 1e-9 {
			t.Fatalf("lane %d field drift %v", r, drift)
		}
	}
}

func TestPackedDenseMatchesScalarFleet(t *testing.T) {
	src := rng.New(21)
	model := randomModel(src, 33)
	pm := NewPacked(model, rng.New(777))
	fleet := scalarFleet(model, 777, false)
	runDifferential(t, pm, fleet,
		func(i, r int) float64 { return pm.fields[i*Lanes+r] },
		func(m interface{}, i int) float64 { return m.(*Machine).field[i] })
}

func TestPackedSparseMatchesScalarFleet(t *testing.T) {
	src := rng.New(22)
	q := ising.NewQUBO(40)
	for i := 0; i < 40; i++ {
		q.AddLinear(i, src.Sym())
		if i == 0 {
			continue // spin 0 stays isolated: exercises the empty CSR row
		}
		for j := i + 1; j < 40; j++ {
			if src.Bool(0.15) {
				q.AddQuad(i, j, src.Sym())
			}
		}
	}
	model := q.ToIsing()
	pm := NewPackedSparse(model, rng.New(333))
	fleet := scalarFleet(model, 333, true)
	runDifferential(t, pm, fleet,
		func(i, r int) float64 { return pm.fields[i*Lanes+r] },
		func(m interface{}, i int) float64 { return m.(*SparseMachine).field[i] })
}

// The AVX2 kernels and the portable Go kernels must produce bit-identical
// trajectories: run the same seeded anneal under both dispatch paths and
// compare every lane's final state and every field word.
func TestPackedNativeMatchesPortable(t *testing.T) {
	saved := cpufeat.HasAVX2
	defer func() { cpufeat.HasAVX2 = saved }()

	src := rng.New(23)
	model := randomModel(src, 29)
	sched := schedule.Linear{Start: 0.1, End: 3.5}

	run := func(native bool) (*PackedMachine, *PackedSparseMachine) {
		cpufeat.HasAVX2 = native && saved
		d := NewPacked(model, rng.New(99))
		d.AnnealRun(sched, 50)
		s := NewPackedSparse(model, rng.New(99))
		s.AnnealRun(sched, 50)
		return d, s
	}
	dn, sn := run(true)
	dp, sp := run(false)

	for i := 0; i < model.N(); i++ {
		if dn.states[i] != dp.states[i] {
			t.Fatalf("dense spin %d: native state %#x portable %#x", i, dn.states[i], dp.states[i])
		}
		if sn.states[i] != sp.states[i] {
			t.Fatalf("sparse spin %d: native state %#x portable %#x", i, sn.states[i], sp.states[i])
		}
		for r := 0; r < Lanes; r++ {
			if dn.fields[i*Lanes+r] != dp.fields[i*Lanes+r] {
				t.Fatalf("dense field (%d,%d): native %v portable %v", i, r, dn.fields[i*Lanes+r], dp.fields[i*Lanes+r])
			}
			if sn.fields[i*Lanes+r] != sp.fields[i*Lanes+r] {
				t.Fatalf("sparse field (%d,%d): native %v portable %v", i, r, sn.fields[i*Lanes+r], sp.fields[i*Lanes+r])
			}
		}
	}
}

// packedWant against 64 independent wantSpin calls, across betas that
// reach both saturation rails and dispatch paths.
func TestPackedWantMatchesWantSpin(t *testing.T) {
	saved := cpufeat.HasAVX2
	defer func() { cpufeat.HasAVX2 = saved }()

	src := rng.New(5)
	f := make([]float64, Lanes)
	nz := make([]float64, Lanes)
	for trial := 0; trial < 200; trial++ {
		beta := float64(trial) * 0.05
		for r := range f {
			f[r] = src.Sym() * 8
			if trial%7 == 0 {
				f[r] *= 100 // force deep saturation
			}
			nz[r] = src.Sym()
		}
		var want uint64
		for r := 0; r < Lanes; r++ {
			if wantSpin(beta*f[r], nz[r]) == 1 {
				want |= 1 << r
			}
		}
		for _, native := range []bool{true, false} {
			cpufeat.HasAVX2 = native && saved
			if got := packedWant(beta, f, nz); got != want {
				t.Fatalf("trial %d native=%v: packedWant %#x want %#x", trial, native, got, want)
			}
		}
	}
}

// Per-lane bias reprogramming must follow the scalar UpdateBiases
// arithmetic: diverge the lanes' biases, sweep, and compare each lane to a
// scalar machine given the same bias sequence.
func TestUpdateLaneBiasesMatchesScalar(t *testing.T) {
	src := rng.New(31)
	model := randomModel(src, 20)
	pm := NewPacked(model, rng.New(444))
	fleet := scalarFleet(model, 444, false)

	pm.Randomize()
	for _, m := range fleet {
		m.Randomize()
	}
	h := vecmat.NewVec(20)
	got := ising.NewSpins(20)
	for step := 0; step < 10; step++ {
		for r, m := range fleet {
			for i := range h {
				h[i] = float64(r)*0.01 - float64(step)*0.1
			}
			pm.UpdateLaneBiases(r, h)
			m.UpdateBiases(h)
		}
		pm.Sweep(1.2)
		for r, m := range fleet {
			m.Sweep(1.2)
			pm.LaneStateInto(got, r)
			want := m.State()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d lane %d spin %d mismatch", step, r, i)
				}
			}
		}
	}
	for r := 0; r < Lanes; r++ {
		if drift := pm.LaneFieldConsistencyError(r); drift > 1e-9 {
			t.Fatalf("lane %d drift %v after bias reprogramming", r, drift)
		}
	}
}

// Warm start: installing one configuration on all lanes and continuing
// must equal each scalar machine warm-started from the same state.
func TestPackedWarmStartMatchesScalar(t *testing.T) {
	src := rng.New(37)
	model := randomModel(src, 18)
	pm := NewPacked(model, rng.New(555))
	fleet := scalarFleet(model, 555, false)

	start := ising.NewSpins(18)
	for i := range start {
		if i%3 == 0 {
			start[i] = 1
		} else {
			start[i] = -1
		}
	}
	pm.SetAllLanesState(start)
	for _, m := range fleet {
		m.SetState(start)
	}
	sched := schedule.Linear{Start: 0.3, End: 2.5}
	pm.AnnealFromRun(sched, 25)
	got := ising.NewSpins(18)
	for r, m := range fleet {
		ws := m.(*Machine).AnnealFrom(sched, 25)
		pm.LaneStateInto(got, r)
		for i := range ws {
			if got[i] != ws[i] {
				t.Fatalf("lane %d spin %d: warm-start mismatch", r, i)
			}
		}
	}
}

// Per-spin magnetization (mean over lanes) must match the scalar fleet's —
// the statistic the replica pool's aggregation consumes.
func TestPackedMagnetizationMatchesScalarFleet(t *testing.T) {
	src := rng.New(41)
	model := randomModel(src, 16)
	pm := NewPacked(model, rng.New(666))
	fleet := scalarFleet(model, 666, false)

	sched := schedule.Linear{Start: 0.1, End: 2.0}
	pm.AnnealRun(sched, 30)
	scalarSum := make([]int, 16)
	for _, m := range fleet {
		m.Randomize()
		for t := 0; t < 30; t++ {
			m.Sweep(sched.Beta(t, 30))
		}
		for i, v := range m.State() {
			scalarSum[i] += int(v)
		}
	}
	lane := ising.NewSpins(16)
	for i := 0; i < 16; i++ {
		packedSum := 0
		for r := 0; r < Lanes; r++ {
			pm.LaneStateInto(lane, r)
			packedSum += int(lane[i])
		}
		if packedSum != scalarSum[i] {
			t.Fatalf("spin %d magnetization: packed %d scalar %d", i, packedSum, scalarSum[i])
		}
	}
	if pm.Sweeps() != 30 {
		t.Fatalf("packed sweep count %d, want 30", pm.Sweeps())
	}
}
