package pbit

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

func randomModel(src *rng.Source, n int) *ising.Model {
	q := ising.NewQUBO(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, src.Sym())
		for j := i + 1; j < n; j++ {
			q.AddQuad(i, j, src.Sym())
		}
	}
	return q.ToIsing()
}

func TestTanhApproxAccuracy(t *testing.T) {
	for x := -8.0; x <= 8.0; x += 0.001 {
		if err := math.Abs(tanhApprox(x) - math.Tanh(x)); err > 1.5e-4 {
			t.Fatalf("tanhApprox(%v) error %v", x, err)
		}
	}
	if tanhApprox(100) != 1 || tanhApprox(-100) != -1 {
		t.Fatal("saturation broken")
	}
}

func TestNewRejectsInvalidModel(t *testing.T) {
	m := ising.NewModel(2)
	m.J.Set(0, 0, 1) // diagonal entry is invalid
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid model")
		}
	}()
	New(m, rng.New(1))
}

func TestFieldsIncrementalConsistency(t *testing.T) {
	src := rng.New(2)
	model := randomModel(src, 24)
	m := New(model, src.Split())
	for k := 0; k < 50; k++ {
		m.Sweep(1.0)
		if err := m.FieldConsistencyError(); err > 1e-9 {
			t.Fatalf("field drift %v after sweep %d", err, k)
		}
	}
}

func TestFlipFieldUpdateProperty(t *testing.T) {
	src := rng.New(3)
	f := func(raw uint8) bool {
		n := int(raw%12) + 2
		model := randomModel(src, n)
		m := New(model, src.Split())
		m.Randomize()
		i := src.Intn(n)
		m.flip(i)
		return m.FieldConsistencyError() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateBiasesMatchesRecompute(t *testing.T) {
	src := rng.New(5)
	model := randomModel(src, 16)
	m := New(model, src.Split())
	m.Randomize()
	origH := model.H.Clone()
	newH := vecmat.NewVec(16)
	for i := range newH {
		newH[i] = src.Sym() * 3
	}
	m.UpdateBiases(newH)
	if err := m.FieldConsistencyError(); err > 1e-9 {
		t.Fatalf("UpdateBiases drift %v", err)
	}
	// The shared model must NOT be mutated: bias reprogramming is
	// copy-on-write so machines sharing one model never race on H.
	for i := range newH {
		if model.H[i] != origH[i] {
			t.Fatalf("shared model bias %d mutated by UpdateBiases", i)
		}
	}
}

func TestZeroBetaIsUniform(t *testing.T) {
	// At β=0 the activation is tanh(0)=0 and each p-bit is a fair coin.
	src := rng.New(7)
	model := randomModel(src, 8)
	m := New(model, src.Split())
	const sweeps = 20000
	up := make([]int, 8)
	for k := 0; k < sweeps; k++ {
		m.Sweep(0)
		for i, s := range m.State() {
			if s == 1 {
				up[i]++
			}
		}
	}
	for i, c := range up {
		frac := float64(c) / sweeps
		if math.Abs(frac-0.5) > 0.02 {
			t.Fatalf("p-bit %d up-fraction %v at β=0", i, frac)
		}
	}
}

func TestHighBetaDescendsEnergy(t *testing.T) {
	// At large β the machine behaves like a greedy minimizer: energy after
	// annealing should be no worse than the random start on average.
	src := rng.New(11)
	model := randomModel(src, 30)
	m := New(model, src.Split())
	better := 0
	const trials = 20
	for k := 0; k < trials; k++ {
		m.Randomize()
		e0 := m.Energy()
		m.AnnealFrom(schedule.Constant{Value: 50}, 50)
		if m.Energy() <= e0 {
			better++
		}
	}
	if better < trials-2 {
		t.Fatalf("high-β annealing failed to descend in %d/%d trials", trials-better, trials)
	}
}

// Gibbs correctness: for a 2-spin ferromagnet the empirical distribution
// must match the Boltzmann distribution exp(-βH)/Z.
func TestBoltzmannDistributionTwoSpins(t *testing.T) {
	model := ising.NewModel(2)
	model.J.Set(0, 1, 1) // H = -m0·m1: aligned states have H=-1, anti have H=+1
	beta := 0.8
	m := New(model, rng.New(13))
	counts := map[[2]int8]int{}
	const samples = 400000
	for k := 0; k < samples; k++ {
		m.Sweep(beta)
		counts[[2]int8{m.State()[0], m.State()[1]}]++
	}
	z := 2*math.Exp(beta) + 2*math.Exp(-beta)
	wantAligned := math.Exp(beta) / z
	wantAnti := math.Exp(-beta) / z
	cases := []struct {
		s    [2]int8
		want float64
	}{
		{[2]int8{1, 1}, wantAligned},
		{[2]int8{-1, -1}, wantAligned},
		{[2]int8{1, -1}, wantAnti},
		{[2]int8{-1, 1}, wantAnti},
	}
	for _, c := range cases {
		got := float64(counts[c.s]) / samples
		if math.Abs(got-c.want) > 0.01 {
			t.Fatalf("state %v frequency %v, want %v", c.s, got, c.want)
		}
	}
}

// With a strong bias field, a single p-bit must polarize according to
// P(m=+1) = (1+tanh(βh))/2.
func TestSinglePBitPolarization(t *testing.T) {
	model := ising.NewModel(1)
	model.H[0] = 0.7
	beta := 1.5
	m := New(model, rng.New(17))
	up := 0
	const samples = 300000
	for k := 0; k < samples; k++ {
		m.Sweep(beta)
		if m.State()[0] == 1 {
			up++
		}
	}
	want := (1 + math.Tanh(beta*model.H[0])) / 2
	got := float64(up) / samples
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("polarization %v, want %v", got, want)
	}
}

func TestAnnealFindsGroundStateSmall(t *testing.T) {
	// Frustration-free 6-spin chain; exact ground state by exhaustive
	// enumeration, annealer must find it in most runs.
	src := rng.New(19)
	model := randomModel(src, 10)
	best := math.Inf(1)
	n := model.N()
	for mask := 0; mask < 1<<n; mask++ {
		s := make(ising.Spins, n)
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if e := model.Energy(s); e < best {
			best = e
		}
	}
	m := New(model, src.Split())
	hits := 0
	const runs = 30
	for k := 0; k < runs; k++ {
		s := m.Anneal(schedule.Linear{Start: 0, End: 10}, 300)
		if model.Energy(s) <= best+1e-9 {
			hits++
		}
	}
	if hits < runs/2 {
		t.Fatalf("annealer hit ground state only %d/%d times", hits, runs)
	}
}

func TestSweepCounter(t *testing.T) {
	src := rng.New(23)
	m := New(randomModel(src, 4), src.Split())
	m.Anneal(schedule.Linear{End: 5}, 17)
	if m.Sweeps() != 17 {
		t.Fatalf("Sweeps = %d, want 17", m.Sweeps())
	}
}

func TestSetStateCopiesAndRecomputes(t *testing.T) {
	src := rng.New(29)
	m := New(randomModel(src, 6), src.Split())
	s := ising.NewSpins(6)
	s[2] = 1
	m.SetState(s)
	s[3] = 1 // mutate caller's slice; machine must be unaffected
	if m.State()[3] != -1 {
		t.Fatal("SetState aliased caller slice")
	}
	if err := m.FieldConsistencyError(); err > 1e-12 {
		t.Fatalf("SetState field drift %v", err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() ising.Spins {
		src := rng.New(31)
		m := New(randomModel(src, 12), src.Split())
		return m.Anneal(schedule.Linear{End: 8}, 100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}
