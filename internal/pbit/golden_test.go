package pbit

import (
	"testing"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Golden trajectory fingerprints captured from the seed kernels (the
// pre-CSR adjacency-list sparse machine and the branchy dense flip). The
// rebuilt kernels must reproduce these trajectories bit-for-bit: the sweep
// is the contract every experiment's reproducibility rests on, so a kernel
// optimization that changes a single flip anywhere in the run is a bug, not
// a tuning difference.
const (
	goldenHashD035 = uint64(11116957373567348549)
	goldenHashD100 = uint64(14006442021969948009)
)

// trajectoryMachine is the kernel surface the golden tests drive: both the
// dense and the CSR machine implement it.
type trajectoryMachine interface {
	Randomize()
	Sweep(beta float64)
	UpdateBiases(h vecmat.Vec)
	State() ising.Spins
}

// fnv1a folds one state snapshot into a running FNV-1a hash. Hashing every
// spin after every sweep makes the final value a fingerprint of the entire
// trajectory: any single diverging flip changes it.
func fnv1a(h uint64, state ising.Spins) uint64 {
	for _, s := range state {
		h ^= uint64(uint8(s))
		h *= 1099511628211
	}
	return h
}

// goldenTrajectory replays the reference protocol: one annealing run, a
// bias reprogramming (the SAIM λ-update path), a continuation run on the
// new biases, then a fresh re-randomized run — hashing the state after
// every sweep.
func goldenTrajectory(m trajectoryMachine, n int) uint64 {
	h := uint64(14695981039346656037)
	sched := schedule.Linear{Start: 0, End: 10}
	m.Randomize()
	for t := 0; t < 60; t++ {
		m.Sweep(sched.Beta(t, 60))
		h = fnv1a(h, m.State())
	}
	// Reprogram biases deterministically (independent of machine rng).
	hsrc := rng.New(4242)
	newH := vecmat.NewVec(n)
	for i := range newH {
		newH[i] = hsrc.Sym() * 2
	}
	m.UpdateBiases(newH)
	for t := 0; t < 60; t++ {
		m.Sweep(2.0)
		h = fnv1a(h, m.State())
	}
	m.Randomize()
	for t := 0; t < 60; t++ {
		m.Sweep(sched.Beta(t, 60))
		h = fnv1a(h, m.State())
	}
	return h
}

// goldenModel rebuilds the reference Hamiltonian. Each machine under test
// gets a fresh build so a bug that mutated shared model state would not
// leak between subtests (bias reprogramming is copy-on-write since PR 9).
func goldenModel(seed uint64, density float64) *ising.Model {
	return sparseModel(rng.New(seed), 48, density)
}

func TestGoldenTrajectoryDense(t *testing.T) {
	if h := goldenTrajectory(New(goldenModel(2024, 0.35), rng.New(555)), 48); h != goldenHashD035 {
		t.Fatalf("dense kernel diverged from seed trajectory at d=0.35: hash %d, want %d", h, goldenHashD035)
	}
	if h := goldenTrajectory(New(goldenModel(2025, 1.0), rng.New(556)), 48); h != goldenHashD100 {
		t.Fatalf("dense kernel diverged from seed trajectory at d=1.0: hash %d, want %d", h, goldenHashD100)
	}
}

func TestGoldenTrajectoryCSR(t *testing.T) {
	if h := goldenTrajectory(NewSparse(goldenModel(2024, 0.35), rng.New(555)), 48); h != goldenHashD035 {
		t.Fatalf("CSR kernel diverged from seed trajectory at d=0.35: hash %d, want %d", h, goldenHashD035)
	}
	if h := goldenTrajectory(NewSparse(goldenModel(2025, 1.0), rng.New(556)), 48); h != goldenHashD100 {
		t.Fatalf("CSR kernel diverged from seed trajectory at d=1.0: hash %d, want %d", h, goldenHashD100)
	}
}
