// AVX2 packed-sweep kernels. Each processes 4 lanes per ymm vector,
// 16 groups per 64-lane spin block. Floating-point operation order matches
// the scalar wantSpin / flip kernels exactly (separate multiply and add,
// never FMA; Padé numerator/denominator evaluated in the scalar nesting
// order), so results are bit-identical to the portable Go path.

#include "textflag.h"

// wantSpin saturation bounds (8-byte, broadcast once per call).
DATA satHi<>+0(SB)/8, $0x40143d70a3d70a3d // 5.06
GLOBL satHi<>(SB), RODATA, $8
DATA satLo<>+0(SB)/8, $0xc0143d70a3d70a3d // -5.06
GLOBL satLo<>(SB), RODATA, $8

// Padé coefficients and blend constants as full 32-byte vectors, used as
// memory operands so the whole register file stays free for live values.
#define VCONST(name, bits) \
	DATA name+0(SB)/8, bits  \
	DATA name+8(SB)/8, bits  \
	DATA name+16(SB)/8, bits \
	DATA name+24(SB)/8, bits \
	GLOBL name(SB), RODATA|NOPTR, $32

VCONST(c135135<>, $0x41007ef800000000)
VCONST(c17325<>, $0x40d0eb4000000000)
VCONST(c378<>, $0x4077a00000000000)
VCONST(c62370<>, $0x40ee744000000000)
VCONST(c3150<>, $0x40a89c0000000000)
VCONST(c28<>, $0x403c000000000000)
VCONST(cNeg1<>, $0xbff0000000000000) // -1.0
VCONST(cPos1<>, $0x3ff0000000000000) // 1.0

// func packedWantAVX2(beta float64, f, nz *float64) uint64
//
// Pass A scans all 16 groups branch-free, accumulating two 64-bit masks:
// hi (x > 5.06 per lane) and sat (|x| beyond either rail). When every lane
// is saturated — the dominant case late in an anneal — the want word is hi
// and the Padé evaluation is skipped entirely: the scalar saturation
// shortcut amortized to one branch per 64 lanes. Otherwise pass B runs the
// Padé rational in the exact scalar nesting order, adds the noise, and
// forces saturated lanes to ±1.0 by blend so one sign-mask read per group
// yields the want nibble. want bit r = 1 ⇔ sum_r >= 0; the sum can never
// be -0.0 (the noise stream never produces -0.0 and (+0)+(-0) = +0 in
// round-to-nearest), so the sign bit is exactly the >= 0 decision.
TEXT ·packedWantAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSD beta+0(FP), Y0
	MOVQ f+8(FP), SI
	MOVQ nz+16(FP), DX
	VBROADCASTSD satHi<>(SB), Y1
	VBROADCASTSD satLo<>(SB), Y2

	// Pass A: walk groups 15..0 two at a time, shift-accumulating the hi
	// and sat nibbles (R10, R11) from the top down.
	LEAQ 448(SI), R9 // group 14; 32(R9) is group 15
	XORQ R10, R10
	XORQ R11, R11
	MOVQ $8, R8

scan:
	VMOVUPD 32(R9), Y3 // higher group of the pair
	VMOVUPD (R9), Y12  // lower group
	VMULPD  Y0, Y3, Y3
	VMULPD  Y0, Y12, Y12
	VCMPPD  $0x1e, Y1, Y3, Y4   // x > 5.06 (GT_OQ)
	VCMPPD  $0x11, Y2, Y3, Y5   // x < -5.06 (LT_OQ)
	VCMPPD  $0x1e, Y1, Y12, Y13
	VCMPPD  $0x11, Y2, Y12, Y14
	VPOR    Y4, Y5, Y6
	VPOR    Y13, Y14, Y15
	VMOVMSKPD Y4, AX
	VMOVMSKPD Y13, BX
	SHLQ    $8, R10
	SHLQ    $4, AX
	ORQ     BX, AX
	ORQ     AX, R10
	VMOVMSKPD Y6, AX
	VMOVMSKPD Y15, BX
	SHLQ    $8, R11
	SHLQ    $4, AX
	ORQ     BX, AX
	ORQ     AX, R11
	SUBQ    $64, R9
	DECQ    R8
	JNE     scan

	CMPQ R11, $-1
	JNE  pade
	MOVQ R10, ret+24(FP) // every lane saturated: want = hi mask
	VZEROUPPER
	RET

	// Pass B: Padé evaluation for the groups with at least one unsaturated
	// lane; a fully saturated group's want nibble is already decided by hi
	// (the blend would force all four lanes to ±1.0, whose sign IS the hi
	// bit — same nibble, minus a VDIVPD). Saturated lanes inside a mixed
	// group are still overridden by blend. The want nibbles accumulate
	// with a running shift.
pade:
	MOVQ R10, R9 // hi decisions from pass A
	XORQ R10, R10
	XORQ CX, CX  // bit position of current group
	MOVQ $16, R8

padegroup:
	MOVQ R11, AX
	SHRQ CX, AX
	ANDQ $0xf, AX
	CMPQ AX, $0xf
	JNE  padecompute

	// All four lanes saturated: reuse the hi nibble.
	MOVQ R9, AX
	SHRQ CX, AX
	ANDQ $0xf, AX
	SHLQ CX, AX
	ORQ  AX, R10
	JMP  padenext

padecompute:
	VMOVUPD   (SI), Y3
	VMULPD    Y0, Y3, Y3 // x = f·beta
	VCMPPD    $0x1e, Y1, Y3, Y4
	VCMPPD    $0x11, Y2, Y3, Y5
	VMULPD    Y3, Y3, Y6         // x2
	VADDPD    c378<>(SB), Y6, Y7 // 378 + x2
	VMULPD    Y6, Y7, Y7
	VADDPD    c17325<>(SB), Y7, Y7
	VMULPD    Y6, Y7, Y7
	VADDPD    c135135<>(SB), Y7, Y7
	VMULPD    Y3, Y7, Y7          // p = x·(135135 + x2·(17325 + x2·(378 + x2)))
	VMULPD    c28<>(SB), Y6, Y9   // x2·28
	VADDPD    c3150<>(SB), Y9, Y9
	VMULPD    Y6, Y9, Y9
	VADDPD    c62370<>(SB), Y9, Y9
	VMULPD    Y6, Y9, Y9
	VADDPD    c135135<>(SB), Y9, Y9 // q = 135135 + x2·(62370 + x2·(3150 + x2·28))
	VDIVPD    Y9, Y7, Y7            // p/q
	VADDPD    (DX), Y7, Y7          // + noise
	VBLENDVPD Y5, cNeg1<>(SB), Y7, Y7 // saturated-low lanes → -1.0 (want 0)
	VBLENDVPD Y4, cPos1<>(SB), Y7, Y7 // saturated-high lanes → +1.0 (want 1)
	VMOVMSKPD Y7, AX
	NOTL      AX
	ANDL      $0xf, AX // want nibble = ~signbits
	SHLQ      CX, AX
	ORQ       AX, R10

padenext:
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $4, CX
	DECQ R8
	JNE  padegroup

	MOVQ R10, ret+24(FP)
	VZEROUPPER
	RET

// func flipApplyDenseAVX2(row *float64, nrow int, fields *float64, d *[64]float64, groups *int32, ng int)
//
// fields[j·64+g·4 .. +4] += row[j]·d[g·4 .. +4] for each j and each active
// group g. Multiply then add as two separately-rounded ops, matching the
// scalar fj[b] += w*d[b]. One active group (the common co-flip case once
// the anneal cools) hoists the group's offset and deltas out of the row
// walk; all 16 groups active (the flip-heavy early-anneal regime) takes a
// fully unrolled block with no group indirection.
TEXT ·flipApplyDenseAVX2(SB), NOSPLIT, $0-48
	MOVQ  row+0(FP), SI
	MOVQ  nrow+8(FP), R8
	MOVQ  fields+16(FP), DI
	MOVQ  d+24(FP), R9
	MOVQ  groups+32(FP), R10
	MOVQ  ng+40(FP), R11
	TESTQ R8, R8
	JE    done
	CMPQ  R11, $1
	JE    onegroup
	CMPQ  R11, $16
	JE    fullrow
	TESTQ R11, R11
	JE    done

rowloop:
	VBROADCASTSD (SI), Y0 // w = row[j]
	XORQ         BX, BX

grouploop:
	MOVLQSX (R10)(BX*4), AX
	SHLQ    $5, AX            // byte offset of group: g·4 lanes · 8 bytes
	VMOVUPD (R9)(AX*1), Y1    // d
	VMULPD  Y0, Y1, Y1        // w·d
	VADDPD  (DI)(AX*1), Y1, Y2
	VMOVUPD Y2, (DI)(AX*1)
	INCQ    BX
	CMPQ    BX, R11
	JNE     grouploop

	ADDQ $8, SI
	ADDQ $512, DI // next spin's 64-lane field block
	DECQ R8
	JNE  rowloop
	JMP  done

onegroup:
	MOVLQSX (R10), AX
	SHLQ    $5, AX
	ADDQ    AX, DI          // field pointer lands on the active group
	VMOVUPD (R9)(AX*1), Y3  // the group's deltas, hoisted

onerow:
	VBROADCASTSD (SI), Y0
	VMULPD       Y3, Y0, Y1
	VADDPD       (DI), Y1, Y2
	VMOVUPD      Y2, (DI)
	ADDQ         $8, SI
	ADDQ         $512, DI
	DECQ         R8
	JNE          onerow
	JMP          done

#define FLIPGROUP(off) \
	VMOVUPD off(R9), Y1  \
	VMULPD  Y0, Y1, Y1   \
	VADDPD  off(DI), Y1, Y2 \
	VMOVUPD Y2, off(DI)

fullrow:
	VBROADCASTSD (SI), Y0
	FLIPGROUP(0)
	FLIPGROUP(32)
	FLIPGROUP(64)
	FLIPGROUP(96)
	FLIPGROUP(128)
	FLIPGROUP(160)
	FLIPGROUP(192)
	FLIPGROUP(224)
	FLIPGROUP(256)
	FLIPGROUP(288)
	FLIPGROUP(320)
	FLIPGROUP(352)
	FLIPGROUP(384)
	FLIPGROUP(416)
	FLIPGROUP(448)
	FLIPGROUP(480)
	ADDQ $8, SI
	ADDQ $512, DI
	DECQ R8
	JNE  fullrow

done:
	VZEROUPPER
	RET

// func flipApplyCSRAVX2(cols *int32, ws *float64, nnz int, fields *float64, d *[64]float64, groups *int32, ng int)
//
// CSR variant: fields[cols[k]·64+…] += ws[k]·d[…] per active group, with
// the same one-group and sixteen-group specializations.
TEXT ·flipApplyCSRAVX2(SB), NOSPLIT, $0-56
	MOVQ  cols+0(FP), SI
	MOVQ  ws+8(FP), DX
	MOVQ  nnz+16(FP), R8
	MOVQ  fields+24(FP), DI
	MOVQ  d+32(FP), R9
	MOVQ  groups+40(FP), R10
	MOVQ  ng+48(FP), R11
	TESTQ R8, R8
	JE    done
	XORQ  R12, R12 // k
	CMPQ  R11, $1
	JE    onegroup
	CMPQ  R11, $16
	JE    fullentry
	TESTQ R11, R11
	JE    done

entryloop:
	MOVLQSX      (SI)(R12*4), R13 // j = cols[k]
	SHLQ         $9, R13          // j·64 lanes · 8 bytes
	LEAQ         (DI)(R13*1), R14 // lane block of spin j
	VBROADCASTSD (DX)(R12*8), Y0  // w = ws[k]
	XORQ         BX, BX

grouploop:
	MOVLQSX (R10)(BX*4), AX
	SHLQ    $5, AX
	VMOVUPD (R9)(AX*1), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (R14)(AX*1), Y1, Y2
	VMOVUPD Y2, (R14)(AX*1)
	INCQ    BX
	CMPQ    BX, R11
	JNE     grouploop

	INCQ R12
	CMPQ R12, R8
	JNE  entryloop
	JMP  done

onegroup:
	MOVLQSX (R10), AX
	SHLQ    $5, AX
	ADDQ    AX, DI         // field base offset to the active group
	VMOVUPD (R9)(AX*1), Y3 // the group's deltas, hoisted

oneentry:
	MOVLQSX      (SI)(R12*4), R13
	SHLQ         $9, R13
	VBROADCASTSD (DX)(R12*8), Y0
	VMULPD       Y3, Y0, Y1
	VADDPD       (DI)(R13*1), Y1, Y2
	VMOVUPD      Y2, (DI)(R13*1)
	INCQ         R12
	CMPQ         R12, R8
	JNE          oneentry
	JMP          done

#define FLIPGROUPR14(off) \
	VMOVUPD off(R9), Y1  \
	VMULPD  Y0, Y1, Y1   \
	VADDPD  off(R14), Y1, Y2 \
	VMOVUPD Y2, off(R14)

fullentry:
	MOVLQSX      (SI)(R12*4), R13
	SHLQ         $9, R13
	LEAQ         (DI)(R13*1), R14
	VBROADCASTSD (DX)(R12*8), Y0
	FLIPGROUPR14(0)
	FLIPGROUPR14(32)
	FLIPGROUPR14(64)
	FLIPGROUPR14(96)
	FLIPGROUPR14(128)
	FLIPGROUPR14(160)
	FLIPGROUPR14(192)
	FLIPGROUPR14(224)
	FLIPGROUPR14(256)
	FLIPGROUPR14(288)
	FLIPGROUPR14(320)
	FLIPGROUPR14(352)
	FLIPGROUPR14(384)
	FLIPGROUPR14(416)
	FLIPGROUPR14(448)
	FLIPGROUPR14(480)
	INCQ R12
	CMPQ R12, R8
	JNE  fullentry

done:
	VZEROUPPER
	RET

// func flipApplySingleDenseAVX2(row *float64, nrow int, fieldsLane *float64, delta float64)
//
// One-lane flip: fieldsLane[j·64] += row[j]·delta — the scalar flip loop
// at stride 512 bytes. VEX scalar ops keep the upper ymm state clean, so
// no VZEROUPPER is needed.
TEXT ·flipApplySingleDenseAVX2(SB), NOSPLIT, $0-32
	MOVQ   row+0(FP), SI
	MOVQ   nrow+8(FP), R8
	MOVQ   fieldsLane+16(FP), DI
	VMOVSD delta+24(FP), X0
	TESTQ  R8, R8
	JE     done

loop:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VADDSD (DI), X1, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $512, DI
	DECQ   R8
	JNE    loop

done:
	RET

// func flipApplySingleCSRAVX2(cols *int32, ws *float64, nnz int, fieldsLane *float64, delta float64)
TEXT ·flipApplySingleCSRAVX2(SB), NOSPLIT, $0-40
	MOVQ   cols+0(FP), SI
	MOVQ   ws+8(FP), DX
	MOVQ   nnz+16(FP), R8
	MOVQ   fieldsLane+24(FP), DI
	VMOVSD delta+32(FP), X0
	TESTQ  R8, R8
	JE     done
	XORQ   R12, R12

loop:
	MOVLQSX (SI)(R12*4), R13
	SHLQ    $9, R13
	VMOVSD  (DX)(R12*8), X1
	VMULSD  X0, X1, X1
	VADDSD  (DI)(R13*1), X1, X2
	VMOVSD  X2, (DI)(R13*1)
	INCQ    R12
	CMPQ    R12, R8
	JNE     loop

done:
	RET
