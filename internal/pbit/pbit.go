// Package pbit emulates a probabilistic-bit (p-bit) Ising machine in
// software, following Camsari et al. and the proof-of-concept used by the
// SAIM paper (Section III.B).
//
// A p-computer is a network of stochastic neurons m_i ∈ {-1,+1} that each
// receive the local field
//
//	I_i = Σ_j J_ij m_j + h_i                        (paper eq. 9)
//
// and update as
//
//	m_i = sign(tanh(β I_i) + U(-1,1))               (paper eq. 10)
//
// Sequentially sweeping all p-bits is exactly Gibbs sampling of the
// Boltzmann distribution P{m} ∝ exp(-β H{m}) (paper eq. 11): the flip
// probability implied by eq. 10 equals the Gibbs conditional.
//
// The Machine maintains the local-field vector I incrementally: flipping
// spin i adds 2·m_i·J_ji to every I_j, so one full sweep costs O(N·flips)
// row operations instead of O(N²) field recomputations.
//
// Two machines implement the same update rule: the dense Machine (flat J
// rows, unconditional flip propagation) and the CSR SparseMachine. Given
// the same Hamiltonian and seed they produce bit-identical trajectories
// (enforced by golden tests), so the density-based auto-selection in
// internal/core never changes results, only throughput. See DESIGN.md §5.
package pbit

import (
	"fmt"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Machine is a software p-bit Ising machine bound to one Hamiltonian.
// It is not safe for concurrent use; run independent machines per goroutine.
type Machine struct {
	model *ising.Model
	// h is the machine's private copy of the bias vector. UpdateBiases
	// reprograms it without touching model.H, so machines sharing one
	// model (parallel tempering's replica ladder, concurrent engines)
	// never race on — or corrupt — each other's biases. J stays shared:
	// machines only read it.
	h     vecmat.Vec
	state ising.Spins
	field vecmat.Vec // I_i = Σ_j J_ij m_j + h_i, maintained incrementally
	noise vecmat.Vec // per-sweep noise buffer, batch-filled from src
	src   *rng.Source
	// sweeps counts Monte-Carlo sweeps for budget accounting.
	sweeps int64
}

// New returns a machine for the given model with all spins at -1.
// The model must satisfy Validate; New panics otherwise since a malformed
// Hamiltonian is a programming error, not a runtime condition.
func New(model *ising.Model, src *rng.Source) *Machine {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("pbit: invalid model: %v", err))
	}
	m := &Machine{
		model: model,
		h:     model.H.Clone(),
		state: ising.NewSpins(model.N()),
		field: vecmat.NewVec(model.N()),
		noise: vecmat.NewVec(model.N()),
		src:   src,
	}
	m.RecomputeFields()
	return m
}

// N returns the number of p-bits.
func (m *Machine) N() int { return m.model.N() }

// Model returns the Hamiltonian the machine samples from.
func (m *Machine) Model() *ising.Model { return m.model }

// State returns the current spin configuration. The returned slice is the
// machine's live state; callers that need a stable copy must Clone it.
func (m *Machine) State() ising.Spins { return m.state }

// Sweeps returns the number of Monte-Carlo sweeps executed so far.
func (m *Machine) Sweeps() int64 { return m.sweeps }

// Reseed replaces the machine's randomness source. It lets one long-lived
// machine be reused across independent solves (the replica pool reseeds
// before every replica so a pooled solve reproduces exactly the stream a
// freshly built machine would consume).
func (m *Machine) Reseed(src *rng.Source) { m.src = src }

// SetState overwrites the configuration and recomputes local fields.
func (m *Machine) SetState(s ising.Spins) {
	if len(s) != m.N() {
		panic("pbit: SetState dimension mismatch")
	}
	copy(m.state, s)
	m.RecomputeFields()
}

// Randomize draws an independent uniform configuration, as at the start of
// an annealing run.
func (m *Machine) Randomize() {
	for i := range m.state {
		if m.src.Bool(0.5) {
			m.state[i] = 1
		} else {
			m.state[i] = -1
		}
	}
	m.RecomputeFields()
}

// RecomputeFields rebuilds the local-field vector from scratch (O(N²)).
// It is called after bulk state or bias changes; the sweep path maintains
// fields incrementally.
func (m *Machine) RecomputeFields() {
	n := m.N()
	for i := 0; i < n; i++ {
		m.field[i] = m.localField(i)
	}
}

// localField is ising.Model.LocalField over the machine's private biases —
// the accumulation order matches exactly, so privatizing h changed no
// trajectory (the golden tests pin this).
func (m *Machine) localField(i int) float64 {
	row := m.model.J.Row(i)
	acc := m.h[i]
	for j, v := range row {
		acc += v * float64(m.state[j])
	}
	return acc
}

// UpdateBiases replaces the machine's bias vector h with newH and adjusts
// the local fields incrementally in O(N). This is the "weight update" step
// of SAIM: because constraints are linear in x, a Lagrange-multiplier
// update only changes h (and the energy constant), never J. The update is
// copy-on-write: it reprograms the machine's private h, never the shared
// model, so replica ladders built over one model stay race-free.
func (m *Machine) UpdateBiases(newH vecmat.Vec) {
	if len(newH) != m.N() {
		panic("pbit: UpdateBiases dimension mismatch")
	}
	for i := range newH {
		m.field[i] += newH[i] - m.h[i]
		m.h[i] = newH[i]
	}
}

// flip flips spin i and propagates the field change to all neighbors.
//
// Invariant: on entry field[j] == Σ_k J_jk·state[k] + h[j] for every j;
// flipping state[i] changes each field[j] by J_ji·(new−old) = −2·old·J_ji,
// so adding w·delta row-wise restores the invariant without recomputation.
// The loop is deliberately unconditional — adding w·delta for zero weights
// is a no-op, and dropping the zero test keeps the loop branch-free so it
// vectorizes (see DESIGN.md §5.1).
//
//saim:hotpath
func (m *Machine) flip(i int) {
	old := m.state[i]
	m.state[i] = -old
	delta := float64(-2 * old) // new - old ∈ {-2, +2}
	row := m.model.J.Row(i)
	field := m.field[:len(row)]
	for j, w := range row {
		field[j] += w * delta
	}
}

// tanhApprox evaluates tanh via a clamped rational approximation. The p-bit
// activation only needs ~1e-4 absolute accuracy (its output is compared
// against uniform noise of amplitude 1), and this is measurably faster than
// math.Tanh in the sweep inner loop. The clamp at ±5.06 is where the Padé
// error crosses the saturation error; maximum absolute error is ~1.1e-4.
//
//saim:hotpath
func tanhApprox(x float64) float64 {
	if x > 5.06 {
		return 1
	}
	if x < -5.06 {
		return -1
	}
	x2 := x * x
	// Padé-type approximant of tanh, accurate on [-5, 5].
	p := x * (135135 + x2*(17325+x2*(378+x2)))
	q := 135135 + x2*(62370+x2*(3150+x2*28))
	return p / q
}

// wantSpin applies the p-bit update rule m' = sign(tanh(β·I) + noise) to
// one β-scaled local field x. Saturated inputs (|x| beyond the tanhApprox
// clamp) decide without evaluating the Padé polynomial: noise ∈ [-1, 1),
// so at act = 1 the sum 1+noise ≥ 0 always (ties resolve to +1, matching
// the reference rule at noise = -1 exactly), and at act = -1 the sum
// noise−1 < 0 always. The Padé arithmetic is identical to tanhApprox, so
// both sweep kernels calling this one helper stay trajectory-identical to
// each other and to the reference rule. Kept tiny so it inlines into the
// sweep loops.
//
//saim:hotpath
func wantSpin(x, noise float64) int8 {
	if x > 5.06 {
		return 1
	}
	if x < -5.06 {
		return -1
	}
	x2 := x * x
	p := x * (135135 + x2*(17325+x2*(378+x2)))
	q := 135135 + x2*(62370+x2*(3150+x2*28))
	if p/q+noise >= 0 {
		return 1
	}
	return -1
}

// Sweep performs one Monte-Carlo sweep (MCS): a sequential pass updating
// every p-bit once with inverse temperature beta, per paper eq. 10.
//
// The per-spin noise is pre-drawn in one batch (same stream order as
// drawing inside the loop, so trajectories are unchanged), wantSpin's
// saturation shortcut skips the Padé polynomial for frozen spins, and the
// loop body indexes re-sliced buffers so bounds checks are hoisted.
//
//saim:hotpath
func (m *Machine) Sweep(beta float64) {
	n := len(m.state)
	if n == 0 {
		m.sweeps++
		return
	}
	noise := m.noise[:n]
	m.src.FillSym(noise)
	state := m.state[:n]
	field := m.field[:n]
	for i := 0; i < n; i++ {
		if want := wantSpin(beta*field[i], noise[i]); want != state[i] {
			m.flip(i)
		}
	}
	m.sweeps++
}

// Anneal runs `sweeps` Monte-Carlo sweeps with β following sched, starting
// from a fresh random configuration, and returns the final state (the
// paper reads the last sample of each run). The returned slice is a copy;
// allocation-sensitive callers should use AnnealInto.
func (m *Machine) Anneal(sched schedule.Schedule, sweeps int) ising.Spins {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// AnnealInto is Anneal writing the final configuration into the
// caller-owned dst (length N) instead of allocating a copy. It is the
// zero-allocation run primitive of the solve engine.
//
//saim:hotpath
func (m *Machine) AnnealInto(dst ising.Spins, sched schedule.Schedule, sweeps int) {
	if len(dst) != m.N() {
		panic("pbit: AnnealInto dimension mismatch")
	}
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	copy(dst, m.state)
}

// AnnealFrom is Anneal without the re-randomization: it continues from the
// current state. Used by parallel tempering and warm-start ablations.
func (m *Machine) AnnealFrom(sched schedule.Schedule, sweeps int) ising.Spins {
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// AnnealFromInto is AnnealFrom writing the final configuration into the
// caller-owned dst instead of allocating a copy.
//
//saim:hotpath
func (m *Machine) AnnealFromInto(dst ising.Spins, sched schedule.Schedule, sweeps int) {
	if len(dst) != m.N() {
		panic("pbit: AnnealFromInto dimension mismatch")
	}
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	copy(dst, m.state)
}

// Energy returns the Hamiltonian energy of the current state under the
// machine's (possibly reprogrammed) private biases.
func (m *Machine) Energy() float64 {
	n := m.N()
	e := m.model.Const
	for i := 0; i < n; i++ {
		row := m.model.J.Row(i)
		si := float64(m.state[i])
		acc := 0.0
		for j := i + 1; j < n; j++ {
			acc += row[j] * float64(m.state[j])
		}
		e -= si * acc
		e -= m.h[i] * si
	}
	return e
}

// FieldConsistencyError returns the largest absolute difference between the
// incrementally-maintained fields and a from-scratch recomputation. Tests
// use it to verify the incremental update path.
func (m *Machine) FieldConsistencyError() float64 {
	worst := 0.0
	for i := 0; i < m.N(); i++ {
		d := m.field[i] - m.localField(i)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
