// Package pbit emulates a probabilistic-bit (p-bit) Ising machine in
// software, following Camsari et al. and the proof-of-concept used by the
// SAIM paper (Section III.B).
//
// A p-computer is a network of stochastic neurons m_i ∈ {-1,+1} that each
// receive the local field
//
//	I_i = Σ_j J_ij m_j + h_i                        (paper eq. 9)
//
// and update as
//
//	m_i = sign(tanh(β I_i) + U(-1,1))               (paper eq. 10)
//
// Sequentially sweeping all p-bits is exactly Gibbs sampling of the
// Boltzmann distribution P{m} ∝ exp(-β H{m}) (paper eq. 11): the flip
// probability implied by eq. 10 equals the Gibbs conditional.
//
// The Machine maintains the local-field vector I incrementally: flipping
// spin i adds 2·m_i·J_ji to every I_j, so one full sweep costs O(N·flips)
// row operations instead of O(N²) field recomputations.
package pbit

import (
	"fmt"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Machine is a software p-bit Ising machine bound to one Hamiltonian.
// It is not safe for concurrent use; run independent machines per goroutine.
type Machine struct {
	model *ising.Model
	state ising.Spins
	field vecmat.Vec // I_i = Σ_j J_ij m_j + h_i, maintained incrementally
	src   *rng.Source
	// tanhLUT caches tanh evaluations per sweep when β is constant within
	// the sweep; kept simple: we evaluate tanh directly (fast enough) but
	// count sweeps for diagnostics.
	sweeps int64
}

// New returns a machine for the given model with all spins at -1.
// The model must satisfy Validate; New panics otherwise since a malformed
// Hamiltonian is a programming error, not a runtime condition.
func New(model *ising.Model, src *rng.Source) *Machine {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("pbit: invalid model: %v", err))
	}
	m := &Machine{
		model: model,
		state: ising.NewSpins(model.N()),
		field: vecmat.NewVec(model.N()),
		src:   src,
	}
	m.RecomputeFields()
	return m
}

// N returns the number of p-bits.
func (m *Machine) N() int { return m.model.N() }

// Model returns the Hamiltonian the machine samples from.
func (m *Machine) Model() *ising.Model { return m.model }

// State returns the current spin configuration. The returned slice is the
// machine's live state; callers that need a stable copy must Clone it.
func (m *Machine) State() ising.Spins { return m.state }

// Sweeps returns the number of Monte-Carlo sweeps executed so far.
func (m *Machine) Sweeps() int64 { return m.sweeps }

// SetState overwrites the configuration and recomputes local fields.
func (m *Machine) SetState(s ising.Spins) {
	if len(s) != m.N() {
		panic("pbit: SetState dimension mismatch")
	}
	copy(m.state, s)
	m.RecomputeFields()
}

// Randomize draws an independent uniform configuration, as at the start of
// an annealing run.
func (m *Machine) Randomize() {
	for i := range m.state {
		if m.src.Bool(0.5) {
			m.state[i] = 1
		} else {
			m.state[i] = -1
		}
	}
	m.RecomputeFields()
}

// RecomputeFields rebuilds the local-field vector from scratch (O(N²)).
// It is called after bulk state or bias changes; the sweep path maintains
// fields incrementally.
func (m *Machine) RecomputeFields() {
	n := m.N()
	for i := 0; i < n; i++ {
		m.field[i] = m.model.LocalField(m.state, i)
	}
}

// UpdateBiases replaces the model's field vector h with newH and adjusts the
// local fields incrementally in O(N). This is the "weight update" step of
// SAIM: because constraints are linear in x, a Lagrange-multiplier update
// only changes h (and the energy constant), never J.
func (m *Machine) UpdateBiases(newH vecmat.Vec) {
	if len(newH) != m.N() {
		panic("pbit: UpdateBiases dimension mismatch")
	}
	for i := range newH {
		m.field[i] += newH[i] - m.model.H[i]
		m.model.H[i] = newH[i]
	}
}

// flip flips spin i and propagates the field change to all neighbors.
func (m *Machine) flip(i int) {
	old := m.state[i]
	m.state[i] = -old
	delta := float64(-2 * old) // new - old ∈ {-2, +2}
	row := m.model.J.Row(i)
	for j, w := range row {
		if w != 0 {
			m.field[j] += w * delta
		}
	}
}

// tanhApprox evaluates tanh via a clamped rational approximation. The p-bit
// activation only needs ~1e-4 absolute accuracy (its output is compared
// against uniform noise of amplitude 1), and this is measurably faster than
// math.Tanh in the sweep inner loop. The clamp at ±5.06 is where the Padé
// error crosses the saturation error; maximum absolute error is ~1.1e-4.
func tanhApprox(x float64) float64 {
	if x > 5.06 {
		return 1
	}
	if x < -5.06 {
		return -1
	}
	x2 := x * x
	// Padé-type approximant of tanh, accurate on [-5, 5].
	p := x * (135135 + x2*(17325+x2*(378+x2)))
	q := 135135 + x2*(62370+x2*(3150+x2*28))
	return p / q
}

// Sweep performs one Monte-Carlo sweep (MCS): a sequential pass updating
// every p-bit once with inverse temperature beta, per paper eq. 10.
func (m *Machine) Sweep(beta float64) {
	n := m.N()
	for i := 0; i < n; i++ {
		act := tanhApprox(beta * m.field[i])
		noise := m.src.Sym()
		var want int8
		if act+noise >= 0 {
			want = 1
		} else {
			want = -1
		}
		if want != m.state[i] {
			m.flip(i)
		}
	}
	m.sweeps++
}

// Anneal runs `sweeps` Monte-Carlo sweeps with β following sched, starting
// from a fresh random configuration, and returns the final state (the
// paper reads the last sample of each run). The returned slice is a copy.
func (m *Machine) Anneal(sched schedule.Schedule, sweeps int) ising.Spins {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// AnnealFrom is Anneal without the re-randomization: it continues from the
// current state. Used by parallel tempering and warm-start ablations.
func (m *Machine) AnnealFrom(sched schedule.Schedule, sweeps int) ising.Spins {
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// Energy returns the model energy of the current state.
func (m *Machine) Energy() float64 { return m.model.Energy(m.state) }

// FieldConsistencyError returns the largest absolute difference between the
// incrementally-maintained fields and a from-scratch recomputation. Tests
// use it to verify the incremental update path.
func (m *Machine) FieldConsistencyError() float64 {
	worst := 0.0
	for i := 0; i < m.N(); i++ {
		d := m.field[i] - m.model.LocalField(m.state, i)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
