package pbit

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/cpufeat"
	"github.com/ising-machines/saim/internal/rng"
)

// Per-dispatcher differential pins: each flipApply* entry point must
// produce bit-identical fields under the AVX2 and portable paths. The
// sweep-level tests exercise these through whole anneals; these hit each
// dispatcher in isolation with irregular shapes (odd lengths, sparse
// group sets) so a broken edge case cannot hide behind a forgiving
// trajectory. On hardware without AVX2 both runs take the portable path
// and the comparison is vacuous, like the other differential tests.

// diffInputs builds one deterministic set of kernel operands: an
// n-element coupling row, matching CSR spans, a field block, and an
// active-group/delta pair covering a sparse subset of the 16 lane groups.
func diffInputs(n int, seed uint64) (row []float64, cols []int32, ws []float64, fields []float64, d [Lanes]float64, groups []int32) {
	src := rng.New(seed)
	row = make([]float64, n)
	for j := range row {
		row[j] = src.Sym()
	}
	// Every third row entry becomes a stored CSR coupling.
	for j := 0; j < n; j += 3 {
		cols = append(cols, int32(j))
		ws = append(ws, row[j])
	}
	fields = make([]float64, n*Lanes)
	for i := range fields {
		fields[i] = src.Sym()
	}
	for r := range d {
		d[r] = 2 * src.Sym()
	}
	groups = []int32{0, 3, 7, 15} // sparse, unsorted-adjacent group set
	return
}

func cloneFields(fields []float64) []float64 {
	out := make([]float64, len(fields))
	copy(out, fields)
	return out
}

func requireFieldsIdentical(t *testing.T, name string, native, portable []float64) {
	t.Helper()
	for i := range native {
		if math.Float64bits(native[i]) != math.Float64bits(portable[i]) {
			t.Fatalf("%s: field %d diverges: native %x portable %x",
				name, i, math.Float64bits(native[i]), math.Float64bits(portable[i]))
		}
	}
}

func TestFlipApplyDispatchersNativeMatchesPortable(t *testing.T) {
	saved := cpufeat.HasAVX2
	defer func() { cpufeat.HasAVX2 = saved }()

	for _, n := range []int{1, 4, 29, 64} {
		row, cols, ws, fields, d, groups := diffInputs(n, uint64(n)*17+5)

		runPair := func(name string, apply func(fields []float64)) {
			cpufeat.HasAVX2 = saved
			native := cloneFields(fields)
			apply(native)
			cpufeat.HasAVX2 = false
			portable := cloneFields(fields)
			apply(portable)
			requireFieldsIdentical(t, name, native, portable)
		}

		runPair("flipApplyDense", func(f []float64) { flipApplyDense(row, f, &d, groups) })
		runPair("flipApplyCSR", func(f []float64) { flipApplyCSR(cols, ws, f, &d, groups) })
		// The single-lane walks take one lane's stride-64 view; offset 2
		// exercises a lane other than 0.
		runPair("flipApplySingleDense", func(f []float64) { flipApplySingleDense(row, f[2:], 1.75) })
		runPair("flipApplySingleCSR", func(f []float64) { flipApplySingleCSR(cols, ws, f[2:], -0.5) })
	}
}
