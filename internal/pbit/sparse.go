package pbit

import (
	"fmt"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// SparseMachine is a p-bit machine over a compressed-sparse-row (CSR) view
// of the coupling matrix instead of dense rows. Sparse Ising machines are
// the variant that scales to very large spin counts in hardware (Aadit et
// al., the paper's ref [10]); in software the sweep costs O(Σ degree)
// instead of O(N²), which wins whenever the coupling density is below the
// auto-selection threshold of internal/core.
//
// The CSR layout stores all non-zero couplings in three flat arrays:
// rowPtr (N+1 offsets), colIdx and weight (one entry per non-zero, row by
// row). Compared to per-spin adjacency slices this removes one pointer
// indirection per neighbor visit, keeps every row's neighbors contiguous in
// one allocation, and lets the flip kernel walk a single weight span — see
// DESIGN.md §5.2.
//
// Given the same Hamiltonian and seed, SparseMachine reproduces the dense
// Machine's trajectory bit-for-bit: both consume randomness in the same
// order and apply identical update rules (enforced by golden tests).
type SparseMachine struct {
	n        int
	rowPtr   []int32 // rowPtr[i]..rowPtr[i+1] spans spin i's entries
	colIdx   []int32
	weight   []float64
	h        vecmat.Vec
	constant float64
	state    ising.Spins
	field    vecmat.Vec
	noise    vecmat.Vec
	src      *rng.Source
	sweeps   int64
}

// buildCSR flattens the model's non-zero off-diagonal couplings into the
// three-array CSR form shared by SparseMachine and PackedSparseMachine.
func buildCSR(model *ising.Model) (rowPtr, colIdx []int32, weight []float64) {
	n := model.N()
	nnz := 0
	for i := 0; i < n; i++ {
		for j, w := range model.J.Row(i) {
			if w != 0 && j != i {
				nnz++
			}
		}
	}
	rowPtr = make([]int32, n+1)
	colIdx = make([]int32, 0, nnz)
	weight = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		for j, w := range model.J.Row(i) {
			if w != 0 && j != i {
				colIdx = append(colIdx, int32(j))
				weight = append(weight, w)
			}
		}
		rowPtr[i+1] = int32(len(colIdx))
	}
	return rowPtr, colIdx, weight
}

// NewSparse builds a CSR machine from the model's non-zero couplings.
// The model must satisfy Validate; NewSparse panics otherwise.
func NewSparse(model *ising.Model, src *rng.Source) *SparseMachine {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("pbit: invalid model: %v", err))
	}
	n := model.N()
	rowPtr, colIdx, weight := buildCSR(model)
	m := &SparseMachine{
		n:        n,
		rowPtr:   rowPtr,
		colIdx:   colIdx,
		weight:   weight,
		h:        model.H.Clone(),
		constant: model.Const,
		state:    ising.NewSpins(n),
		field:    vecmat.NewVec(n),
		noise:    vecmat.NewVec(n),
		src:      src,
	}
	m.RecomputeFields()
	return m
}

// N returns the number of p-bits.
func (m *SparseMachine) N() int { return m.n }

// State returns the live spin configuration.
func (m *SparseMachine) State() ising.Spins { return m.state }

// Sweeps returns the cumulative Monte-Carlo sweeps executed.
func (m *SparseMachine) Sweeps() int64 { return m.sweeps }

// Reseed replaces the machine's randomness source, allowing one long-lived
// machine to be reused across independent solves (see Machine.Reseed).
func (m *SparseMachine) Reseed(src *rng.Source) { m.src = src }

// Degree returns the number of non-zero couplings of spin i.
func (m *SparseMachine) Degree(i int) int { return int(m.rowPtr[i+1] - m.rowPtr[i]) }

// row returns the CSR column/weight spans of spin i.
func (m *SparseMachine) row(i int) ([]int32, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.weight[lo:hi]
}

// RecomputeFields rebuilds local fields from scratch.
//
//saim:hotpath
func (m *SparseMachine) RecomputeFields() {
	for i := 0; i < m.n; i++ {
		acc := m.h[i]
		cols, ws := m.row(i)
		for k, j := range cols {
			acc += ws[k] * float64(m.state[j])
		}
		m.field[i] = acc
	}
}

// Randomize draws a fresh uniform configuration.
func (m *SparseMachine) Randomize() {
	for i := range m.state {
		if m.src.Bool(0.5) {
			m.state[i] = 1
		} else {
			m.state[i] = -1
		}
	}
	m.RecomputeFields()
}

// SetState overwrites the configuration and recomputes local fields.
func (m *SparseMachine) SetState(s ising.Spins) {
	if len(s) != m.n {
		panic("pbit: SetState dimension mismatch")
	}
	copy(m.state, s)
	m.RecomputeFields()
}

// UpdateBiases replaces h and adjusts local fields in O(N).
func (m *SparseMachine) UpdateBiases(newH vecmat.Vec) {
	if len(newH) != m.n {
		panic("pbit: UpdateBiases dimension mismatch")
	}
	for i := range newH {
		m.field[i] += newH[i] - m.h[i]
		m.h[i] = newH[i]
	}
}

// flip flips spin i and propagates to its CSR neighbors only. The field
// invariant is the same as Machine.flip; here the walk touches exactly the
// Degree(i) stored couplings.
//
//saim:hotpath
func (m *SparseMachine) flip(i int) {
	old := m.state[i]
	m.state[i] = -old
	delta := float64(-2 * old)
	cols, ws := m.row(i)
	field := m.field
	for k, j := range cols {
		field[j] += ws[k] * delta
	}
}

// Sweep performs one sequential Monte-Carlo sweep (paper eq. 10). The
// structure mirrors Machine.Sweep: batch-drawn noise, wantSpin's
// saturation shortcut, bounds-check-free buffers.
//
//saim:hotpath
func (m *SparseMachine) Sweep(beta float64) {
	n := m.n
	if n == 0 {
		m.sweeps++
		return
	}
	noise := m.noise[:n]
	m.src.FillSym(noise)
	state := m.state[:n]
	field := m.field[:n]
	for i := 0; i < n; i++ {
		if want := wantSpin(beta*field[i], noise[i]); want != state[i] {
			m.flip(i)
		}
	}
	m.sweeps++
}

// Anneal runs one annealing run from a fresh random state. The returned
// slice is a copy; allocation-sensitive callers should use AnnealInto.
func (m *SparseMachine) Anneal(sched schedule.Schedule, sweeps int) ising.Spins {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// AnnealInto is Anneal writing the final configuration into the
// caller-owned dst (length N) instead of allocating a copy.
//
//saim:hotpath
func (m *SparseMachine) AnnealInto(dst ising.Spins, sched schedule.Schedule, sweeps int) {
	if len(dst) != m.n {
		panic("pbit: AnnealInto dimension mismatch")
	}
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	copy(dst, m.state)
}

// AnnealFrom continues annealing from the current state (no
// re-randomization), mirroring Machine.AnnealFrom.
func (m *SparseMachine) AnnealFrom(sched schedule.Schedule, sweeps int) ising.Spins {
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// AnnealFromInto is AnnealFrom writing the final configuration into the
// caller-owned dst instead of allocating a copy.
//
//saim:hotpath
func (m *SparseMachine) AnnealFromInto(dst ising.Spins, sched schedule.Schedule, sweeps int) {
	if len(dst) != m.n {
		panic("pbit: AnnealFromInto dimension mismatch")
	}
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	copy(dst, m.state)
}

// Energy returns the Hamiltonian energy of the current state.
func (m *SparseMachine) Energy() float64 {
	e := m.constant
	for i := 0; i < m.n; i++ {
		si := float64(m.state[i])
		cols, ws := m.row(i)
		acc := 0.0
		for k, j := range cols {
			if int(j) > i { // count each pair once
				acc += ws[k] * float64(m.state[j])
			}
		}
		e -= si * acc
		e -= m.h[i] * si
	}
	return e
}

// FieldConsistencyError returns the worst drift between incremental and
// recomputed local fields (test hook).
func (m *SparseMachine) FieldConsistencyError() float64 {
	worst := 0.0
	for i := 0; i < m.n; i++ {
		acc := m.h[i]
		cols, ws := m.row(i)
		for k, j := range cols {
			acc += ws[k] * float64(m.state[j])
		}
		d := m.field[i] - acc
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
