package pbit

import (
	"fmt"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// SparseMachine is a p-bit machine over adjacency lists instead of a dense
// coupling matrix. Sparse Ising machines are the variant that scales to
// very large spin counts in hardware (Aadit et al., the paper's ref [10]);
// in software the sweep costs O(Σ degree) instead of O(N²), which wins
// whenever the coupling density is below ~50%.
//
// Given the same Hamiltonian and seed, SparseMachine reproduces the dense
// Machine's trajectory bit-for-bit: both consume randomness in the same
// order and apply identical update rules.
type SparseMachine struct {
	n         int
	neighbors [][]int32
	weights   [][]float64
	h         vecmat.Vec
	constant  float64
	state     ising.Spins
	field     vecmat.Vec
	src       *rng.Source
	sweeps    int64
}

// NewSparse builds a sparse machine from the model's non-zero couplings.
// The model must satisfy Validate; NewSparse panics otherwise.
func NewSparse(model *ising.Model, src *rng.Source) *SparseMachine {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("pbit: invalid model: %v", err))
	}
	n := model.N()
	m := &SparseMachine{
		n:         n,
		neighbors: make([][]int32, n),
		weights:   make([][]float64, n),
		h:         model.H.Clone(),
		constant:  model.Const,
		state:     ising.NewSpins(n),
		field:     vecmat.NewVec(n),
		src:       src,
	}
	for i := 0; i < n; i++ {
		row := model.J.Row(i)
		for j, w := range row {
			if w != 0 && j != i {
				m.neighbors[i] = append(m.neighbors[i], int32(j))
				m.weights[i] = append(m.weights[i], w)
			}
		}
	}
	m.RecomputeFields()
	return m
}

// N returns the number of p-bits.
func (m *SparseMachine) N() int { return m.n }

// State returns the live spin configuration.
func (m *SparseMachine) State() ising.Spins { return m.state }

// Sweeps returns the cumulative Monte-Carlo sweeps executed.
func (m *SparseMachine) Sweeps() int64 { return m.sweeps }

// Degree returns the number of non-zero couplings of spin i.
func (m *SparseMachine) Degree(i int) int { return len(m.neighbors[i]) }

// RecomputeFields rebuilds local fields from scratch.
func (m *SparseMachine) RecomputeFields() {
	for i := 0; i < m.n; i++ {
		acc := m.h[i]
		nb := m.neighbors[i]
		ws := m.weights[i]
		for k, j := range nb {
			acc += ws[k] * float64(m.state[j])
		}
		m.field[i] = acc
	}
}

// Randomize draws a fresh uniform configuration.
func (m *SparseMachine) Randomize() {
	for i := range m.state {
		if m.src.Bool(0.5) {
			m.state[i] = 1
		} else {
			m.state[i] = -1
		}
	}
	m.RecomputeFields()
}

// UpdateBiases replaces h and adjusts local fields in O(N).
func (m *SparseMachine) UpdateBiases(newH vecmat.Vec) {
	if len(newH) != m.n {
		panic("pbit: UpdateBiases dimension mismatch")
	}
	for i := range newH {
		m.field[i] += newH[i] - m.h[i]
		m.h[i] = newH[i]
	}
}

// flip flips spin i and propagates to its neighbors only.
func (m *SparseMachine) flip(i int) {
	old := m.state[i]
	m.state[i] = -old
	delta := float64(-2 * old)
	nb := m.neighbors[i]
	ws := m.weights[i]
	for k, j := range nb {
		m.field[j] += ws[k] * delta
	}
}

// Sweep performs one sequential Monte-Carlo sweep (paper eq. 10).
func (m *SparseMachine) Sweep(beta float64) {
	for i := 0; i < m.n; i++ {
		act := tanhApprox(beta * m.field[i])
		noise := m.src.Sym()
		var want int8
		if act+noise >= 0 {
			want = 1
		} else {
			want = -1
		}
		if want != m.state[i] {
			m.flip(i)
		}
	}
	m.sweeps++
}

// Anneal runs one annealing run from a fresh random state.
func (m *SparseMachine) Anneal(sched schedule.Schedule, sweeps int) ising.Spins {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// Energy returns the Hamiltonian energy of the current state.
func (m *SparseMachine) Energy() float64 {
	e := m.constant
	for i := 0; i < m.n; i++ {
		si := float64(m.state[i])
		nb := m.neighbors[i]
		ws := m.weights[i]
		acc := 0.0
		for k, j := range nb {
			if int(j) > i { // count each pair once
				acc += ws[k] * float64(m.state[j])
			}
		}
		e -= si * acc
		e -= m.h[i] * si
	}
	return e
}

// FieldConsistencyError returns the worst drift between incremental and
// recomputed local fields (test hook).
func (m *SparseMachine) FieldConsistencyError() float64 {
	worst := 0.0
	for i := 0; i < m.n; i++ {
		acc := m.h[i]
		nb := m.neighbors[i]
		ws := m.weights[i]
		for k, j := range nb {
			acc += ws[k] * float64(m.state[j])
		}
		d := m.field[i] - acc
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
