//go:build amd64

package pbit

import "github.com/ising-machines/saim/internal/cpufeat"

// AVX2 bodies of the packed-sweep primitives (packed_amd64.s). Each one is
// the Go reference kernel re-expressed 4 lanes per vector with the exact
// scalar operation order — same Padé evaluation sequence, same separate
// multiply-then-add rounding (never FMA) — so the trajectories they produce
// are bit-identical to the portable path. packed_test.go runs both by
// toggling cpufeat.HasAVX2 and requires identical results.

//go:noescape
func packedWantAVX2(beta float64, f, nz *float64) uint64

//go:noescape
func flipApplyDenseAVX2(row *float64, nrow int, fields *float64, d *[Lanes]float64, groups *int32, ng int)

//go:noescape
func flipApplyCSRAVX2(cols *int32, ws *float64, nnz int, fields *float64, d *[Lanes]float64, groups *int32, ng int)

//go:noescape
func flipApplySingleDenseAVX2(row *float64, nrow int, fieldsLane *float64, delta float64)

//go:noescape
func flipApplySingleCSRAVX2(cols *int32, ws *float64, nnz int, fieldsLane *float64, delta float64)

// packedWant turns 64 wantSpin decisions for one spin into a mask word.
// The dispatcher reads cpufeat.HasAVX2 on every call so tests can force
// the portable path at runtime.
//
//saim:hotpath
func packedWant(beta float64, f, nz []float64) uint64 {
	_ = f[Lanes-1]
	_ = nz[Lanes-1]
	if cpufeat.HasAVX2 {
		return packedWantAVX2(beta, &f[0], &nz[0])
	}
	return packedWantGo(beta, f, nz)
}

// flipApplyDense adds w·d to every active lane group of each field block
// along a dense J row.
//
//saim:hotpath
func flipApplyDense(row []float64, fields []float64, d *[Lanes]float64, groups []int32) {
	if cpufeat.HasAVX2 {
		if len(row) == 0 || len(groups) == 0 {
			return
		}
		flipApplyDenseAVX2(&row[0], len(row), &fields[0], d, &groups[0], len(groups))
		return
	}
	flipApplyDenseGo(row, fields, d, groups)
}

// flipApplyCSR is flipApplyDense over CSR column/weight spans.
//
//saim:hotpath
func flipApplyCSR(cols []int32, ws []float64, fields []float64, d *[Lanes]float64, groups []int32) {
	if cpufeat.HasAVX2 {
		if len(cols) == 0 || len(groups) == 0 {
			return
		}
		flipApplyCSRAVX2(&cols[0], &ws[0], len(cols), &fields[0], d, &groups[0], len(groups))
		return
	}
	flipApplyCSRGo(cols, ws, fields, d, groups)
}

// flipApplySingleDense propagates a one-lane flip along a dense J row via
// the strided single-lane walk.
//
//saim:hotpath
func flipApplySingleDense(row []float64, fieldsLane []float64, delta float64) {
	if cpufeat.HasAVX2 {
		if len(row) == 0 {
			return
		}
		flipApplySingleDenseAVX2(&row[0], len(row), &fieldsLane[0], delta)
		return
	}
	flipApplySingleDenseGo(row, fieldsLane, delta)
}

// flipApplySingleCSR is flipApplySingleDense over CSR spans.
//
//saim:hotpath
func flipApplySingleCSR(cols []int32, ws []float64, fieldsLane []float64, delta float64) {
	if cpufeat.HasAVX2 {
		if len(cols) == 0 {
			return
		}
		flipApplySingleCSRAVX2(&cols[0], &ws[0], len(cols), &fieldsLane[0], delta)
		return
	}
	flipApplySingleCSRGo(cols, ws, fieldsLane, delta)
}
