package pbit

import "math/bits"

// Portable bodies of the three packed-sweep primitives. On amd64 with AVX2
// the dispatchers in packed_amd64.go route to hand-written vector kernels;
// these Go bodies are the reference implementation, the non-amd64 path, and
// the differential-test oracle (packed_test.go runs both and requires
// identical trajectories).

// packedWantGo evaluates the p-bit update rule for all 64 lanes of one
// spin: bit r of the result is set iff wantSpin(beta·f[r], nz[r]) == +1.
// It calls the same wantSpin the scalar sweeps use, so the packed decision
// is the scalar decision by construction.
//
//saim:hotpath
func packedWantGo(beta float64, f, nz []float64) uint64 {
	_ = f[Lanes-1]
	_ = nz[Lanes-1]
	var want uint64
	for r := 0; r < Lanes; r++ {
		if wantSpin(beta*f[r], nz[r]) == 1 {
			want |= 1 << r
		}
	}
	return want
}

// deltaTab maps a (flip nibble, want nibble) pair to the four lane deltas
// of one group: +2 for lanes flipping to +1, −2 for lanes flipping to −1,
// 0 for unflipped lanes (their w·0 = ±0 contributions are invisible to
// every later threshold decision).
var deltaTab = func() (t [256][4]float64) {
	for fl := 0; fl < 16; fl++ {
		for wn := 0; wn < 16; wn++ {
			for b := 0; b < 4; b++ {
				if fl>>b&1 != 0 {
					if wn>>b&1 != 0 {
						t[fl<<4|wn][b] = 2
					} else {
						t[fl<<4|wn][b] = -2
					}
				}
			}
		}
	}
	return
}()

// buildDeltas converts a flip mask into per-lane field deltas via deltaTab
// and returns the number of active 4-lane groups written to groups — flip
// propagation touches only those, so a sparse flip mask costs a few
// groups, not sixteen. (Single-bit masks never reach here: the sweep
// routes them to the strided single-lane kernels.)
//
//saim:hotpath
func buildDeltas(fl, want uint64, d *[Lanes]float64, groups *[laneGroups]int32) int {
	ng := 0
	for fl != 0 {
		g := bits.TrailingZeros64(fl) >> 2
		nib := fl >> (g * 4) & 0xF
		groups[ng] = int32(g)
		ng++
		t := &deltaTab[nib<<4|(want>>(g*4)&0xF)]
		base := g * 4
		d[base] = t[0]
		d[base+1] = t[1]
		d[base+2] = t[2]
		d[base+3] = t[3]
		fl &^= 0xF << (g * 4)
	}
	return ng
}

// flipApplyDenseGo propagates one spin's flip to every lane's fields over a
// dense J row: fields[j·64+r] += row[j]·d[r] for each lane r of an active
// group. Per lane this is exactly Machine.flip's unconditional row walk.
//
//saim:hotpath
func flipApplyDenseGo(row []float64, fields []float64, d *[Lanes]float64, groups []int32) {
	for j, w := range row {
		fj := fields[j*Lanes : j*Lanes+Lanes]
		for _, g := range groups {
			b := int(g) * 4
			fj[b] += w * d[b]
			fj[b+1] += w * d[b+1]
			fj[b+2] += w * d[b+2]
			fj[b+3] += w * d[b+3]
		}
	}
}

// flipApplyCSRGo is flipApplyDenseGo over CSR spans: per lane, exactly
// SparseMachine.flip's stored-coupling walk.
//
//saim:hotpath
func flipApplyCSRGo(cols []int32, ws []float64, fields []float64, d *[Lanes]float64, groups []int32) {
	for k, j := range cols {
		w := ws[k]
		fj := fields[int(j)*Lanes : int(j)*Lanes+Lanes]
		for _, g := range groups {
			b := int(g) * 4
			fj[b] += w * d[b]
			fj[b+1] += w * d[b+1]
			fj[b+2] += w * d[b+2]
			fj[b+3] += w * d[b+3]
		}
	}
}

// flipApplySingleDenseGo propagates a flip of exactly one lane: a strided
// walk adding row[j]·delta at lane offset j·64 — instruction-for-
// instruction the scalar Machine.flip loop, just with stride-64 fields.
// Late-anneal flips are overwhelmingly single-lane, so this path keeps the
// packed machine at per-flip parity with the scalar pool when flips are
// rare.
//
//saim:hotpath
func flipApplySingleDenseGo(row []float64, fieldsLane []float64, delta float64) {
	if len(row) == 0 {
		return
	}
	_ = fieldsLane[(len(row)-1)*Lanes]
	for j, w := range row {
		fieldsLane[j*Lanes] += w * delta
	}
}

// flipApplySingleCSRGo is flipApplySingleDenseGo over CSR spans.
//
//saim:hotpath
func flipApplySingleCSRGo(cols []int32, ws []float64, fieldsLane []float64, delta float64) {
	for k, j := range cols {
		fieldsLane[int(j)*Lanes] += ws[k] * delta
	}
}
