package pbit

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// AnnealFrom must continue from the current state, not re-randomize: at
// β=∞-ish and zero sweeps it should leave the state untouched.
func TestAnnealFromZeroSweepsKeepsState(t *testing.T) {
	src := rng.New(41)
	m := New(randomModel(src, 8), src.Split())
	s := ising.NewSpins(8)
	s[3] = 1
	m.SetState(s)
	out := m.AnnealFrom(schedule.Constant{Value: 5}, 0)
	for i := range s {
		if out[i] != s[i] {
			t.Fatal("AnnealFrom(0 sweeps) changed state")
		}
	}
}

// Anneal must re-randomize: two consecutive anneals from the same machine
// should (with overwhelming probability) not return identical states on a
// frustrated model at low β.
func TestAnnealRerandomizes(t *testing.T) {
	src := rng.New(43)
	m := New(randomModel(src, 24), src.Split())
	a := m.Anneal(schedule.Constant{Value: 0.1}, 3)
	b := m.Anneal(schedule.Constant{Value: 0.1}, 3)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two low-β anneals returned identical 24-spin states")
	}
}

// A bias flip through UpdateBiases must actually change the sampled
// polarization — the SAIM reprogramming path end to end.
func TestUpdateBiasesChangesSampling(t *testing.T) {
	model := ising.NewModel(1)
	model.H[0] = 2
	m := New(model, rng.New(47))
	count := func() int {
		up := 0
		for k := 0; k < 20000; k++ {
			m.Sweep(1)
			if m.State()[0] == 1 {
				up++
			}
		}
		return up
	}
	upBefore := count()
	m.UpdateBiases(vecmat.Vec{-2})
	upAfter := count()
	if upBefore < 15000 {
		t.Fatalf("positive bias polarization too weak: %d/20000", upBefore)
	}
	if upAfter > 5000 {
		t.Fatalf("negative bias polarization too weak: %d/20000", upAfter)
	}
}

// Detailed-balance sanity on a frustrated triangle: the three-spin
// antiferromagnet has six degenerate ground states (all states with one
// frustrated bond) and two excited states (all aligned). Check the
// empirical ratio against the Boltzmann factor.
func TestFrustratedTriangleDistribution(t *testing.T) {
	model := ising.NewModel(3)
	model.J.Set(0, 1, -1)
	model.J.Set(1, 2, -1)
	model.J.Set(0, 2, -1)
	beta := 0.7
	m := New(model, rng.New(53))
	aligned, frustrated := 0, 0
	const samples = 300000
	for k := 0; k < samples; k++ {
		m.Sweep(beta)
		s := m.State()
		if s[0] == s[1] && s[1] == s[2] {
			aligned++
		} else {
			frustrated++
		}
	}
	// E_aligned = +3·(−(−1)) ... compute directly:
	up := ising.Spins{1, 1, 1}
	mixed := ising.Spins{1, 1, -1}
	dE := model.Energy(up) - model.Energy(mixed)
	// P(aligned)/P(mixed-per-state) = exp(−β dE); 2 aligned states, 6 mixed.
	wantRatio := 2 * math.Exp(-beta*dE) / 6
	gotRatio := float64(aligned) / float64(frustrated)
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.08 {
		t.Fatalf("aligned/frustrated ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestSetStateRejectsWrongLength(t *testing.T) {
	src := rng.New(59)
	m := New(randomModel(src, 4), src.Split())
	defer func() {
		if recover() == nil {
			t.Fatal("SetState accepted wrong length")
		}
	}()
	m.SetState(ising.NewSpins(5))
}

func TestUpdateBiasesRejectsWrongLength(t *testing.T) {
	src := rng.New(61)
	m := New(randomModel(src, 4), src.Split())
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateBiases accepted wrong length")
		}
	}()
	m.UpdateBiases(vecmat.NewVec(3))
}
