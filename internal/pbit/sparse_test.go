package pbit

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// sparseModel builds a random model with the given coupling density.
func sparseModel(src *rng.Source, n int, density float64) *ising.Model {
	q := ising.NewQUBO(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, src.Sym())
		for j := i + 1; j < n; j++ {
			if src.Bool(density) {
				q.AddQuad(i, j, src.Sym())
			}
		}
	}
	return q.ToIsing()
}

// The defining property: dense and sparse machines with identical seeds
// produce bit-identical trajectories.
func TestSparseMatchesDenseTrajectory(t *testing.T) {
	src := rng.New(91)
	model := sparseModel(src, 40, 0.3)
	dense := New(model, rng.New(777))
	sparse := NewSparse(model, rng.New(777))
	for k := 0; k < 30; k++ {
		beta := float64(k) * 0.2
		dense.Sweep(beta)
		sparse.Sweep(beta)
		ds, ss := dense.State(), sparse.State()
		for i := range ds {
			if ds[i] != ss[i] {
				t.Fatalf("trajectories diverged at sweep %d spin %d", k, i)
			}
		}
	}
}

func TestSparseAnnealMatchesDense(t *testing.T) {
	src := rng.New(93)
	model := sparseModel(src, 24, 0.4)
	dense := New(model, rng.New(5))
	sparse := NewSparse(model, rng.New(5))
	sched := schedule.Linear{Start: 0, End: 8}
	a := dense.Anneal(sched, 120)
	b := sparse.Anneal(sched, 120)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("anneal results differ")
		}
	}
	if dense.Energy() != sparse.Energy() {
		t.Fatalf("energies differ: %v vs %v", dense.Energy(), sparse.Energy())
	}
}

func TestSparseFieldConsistency(t *testing.T) {
	src := rng.New(95)
	m := NewSparse(sparseModel(src, 30, 0.2), src.Split())
	for k := 0; k < 40; k++ {
		m.Sweep(1.5)
		if err := m.FieldConsistencyError(); err > 1e-9 {
			t.Fatalf("field drift %v at sweep %d", err, k)
		}
	}
}

func TestSparseUpdateBiases(t *testing.T) {
	src := rng.New(97)
	m := NewSparse(sparseModel(src, 12, 0.3), src.Split())
	m.Randomize()
	h := vecmat.NewVec(12)
	for i := range h {
		h[i] = src.Sym() * 2
	}
	m.UpdateBiases(h)
	if err := m.FieldConsistencyError(); err > 1e-9 {
		t.Fatalf("UpdateBiases drift %v", err)
	}
}

func TestSparseEnergyMatchesModel(t *testing.T) {
	src := rng.New(99)
	model := sparseModel(src, 16, 0.5)
	m := NewSparse(model, src.Split())
	for k := 0; k < 10; k++ {
		m.Randomize()
		if d := math.Abs(m.Energy() - model.Energy(m.State())); d > 1e-9 {
			t.Fatalf("energy mismatch %v", d)
		}
	}
}

func TestSparseDegrees(t *testing.T) {
	model := ising.NewModel(3)
	model.J.Set(0, 1, 1)
	m := NewSparse(model, rng.New(1))
	if m.Degree(0) != 1 || m.Degree(1) != 1 || m.Degree(2) != 0 {
		t.Fatalf("degrees = %d %d %d", m.Degree(0), m.Degree(1), m.Degree(2))
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestSparseRejectsInvalidModel(t *testing.T) {
	model := ising.NewModel(2)
	model.J.Set(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewSparse accepted invalid model")
		}
	}()
	NewSparse(model, rng.New(1))
}

func TestSparseSweepCounter(t *testing.T) {
	src := rng.New(101)
	m := NewSparse(sparseModel(src, 6, 0.5), src.Split())
	m.Anneal(schedule.Linear{End: 5}, 9)
	if m.Sweeps() != 9 {
		t.Fatalf("Sweeps = %d", m.Sweeps())
	}
}
