// Multi-spin coding: 64 replicas of one Hamiltonian swept in lockstep,
// their spin states packed one bit per replica into a single uint64 word
// per spin. Every J-row load, noise batch, and threshold pass is amortized
// across the whole fleet — the classic p-computer trick the replica pool
// (internal/core/parallel.go) previously paid per replica.
//
// Layout ("lane" = replica index r ∈ [0, 64)):
//
//   - states[i] bit r      — spin i of replica r (+1 when set, −1 clear)
//   - fields[i·64+r]       — replica r's local field I_i, lane-blocked so
//     the per-spin threshold pass and the flip propagation both touch 64
//     contiguous float64 (8 cache lines, 16 AVX2 vectors)
//   - hb[i·64+r]           — replica r's private bias h_i (each lane runs
//     its own λ trajectory, so biases diverge across lanes)
//   - noise[i·64+r]        — per-sweep uniform noise, one draw per lane
//
// Couplings stay real-valued, so the field arithmetic is ordinary float64
// math; only the state and the per-spin flip/want decisions are bitwise.
// Each lane owns an independent rng.Source consuming draws in exactly the
// order a scalar machine with that source would (Randomize: one Bool per
// spin; Sweep: one Sym per spin), and the field updates replicate the
// scalar kernels' accumulation order per lane — so given the same
// per-replica sources the packed kernels reproduce 64 scalar trajectories
// bit-for-bit. packed_test.go pins this differentially against the scalar
// machines; the golden-trajectory tests keep pinning the scalar path
// itself. See DESIGN.md §5.5.
package pbit

import (
	"fmt"
	"math/bits"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Lanes is the replica capacity of one packed machine: the word width.
const Lanes = 64

// laneGroups is Lanes/4, the number of 4-lane vector groups per spin.
const laneGroups = Lanes / 4

// PackedKernel is the contract shared by the dense and CSR packed
// machines; internal/core's packed replica engine drives it.
type PackedKernel interface {
	N() int
	// Sweeps reports packed sweep count: one Sweep advances every lane by
	// one Monte-Carlo sweep, so this equals each lane's per-replica count.
	Sweeps() int64
	// ReseedLane gives lane r a fresh randomness source (cf. Machine.Reseed).
	ReseedLane(r int, src *rng.Source)
	// UpdateLaneBiases reprograms lane r's private bias vector (cf.
	// Machine.UpdateBiases; each lane follows its own λ trajectory).
	UpdateLaneBiases(r int, h vecmat.Vec)
	// LaneStateInto copies lane r's current configuration into dst.
	LaneStateInto(dst ising.Spins, r int)
	// SetAllLanesState installs one configuration on every lane and
	// recomputes fields (the warm-start path: every replica of a pooled
	// solve warm-starts from the same assignment).
	SetAllLanesState(s ising.Spins)
	// Randomize draws a fresh uniform configuration per lane.
	Randomize()
	// Sweep runs one Monte-Carlo sweep of all 64 lanes.
	Sweep(beta float64)
}

// packedCore holds the lane-blocked state shared by both packed machines.
type packedCore struct {
	n      int
	states []uint64
	fields []float64
	hb     []float64
	noise  []float64
	d      [Lanes]float64    // per-lane flip deltas (±2 or 0), scratch
	groups [laneGroups]int32 // active 4-lane groups of the current flip
	srcs   [Lanes]*rng.Source
	sweeps int64
}

func newPackedCore(h vecmat.Vec, src *rng.Source) packedCore {
	n := len(h)
	c := packedCore{
		n:      n,
		states: make([]uint64, n),
		fields: make([]float64, n*Lanes),
		hb:     make([]float64, n*Lanes),
		noise:  make([]float64, n*Lanes),
	}
	for i, v := range h {
		for r := 0; r < Lanes; r++ {
			c.hb[i*Lanes+r] = v
		}
	}
	for r := 0; r < Lanes; r++ {
		c.srcs[r] = src.Split()
	}
	return c
}

// N returns the number of p-bits per lane.
func (c *packedCore) N() int { return c.n }

// Sweeps returns the packed sweep count (== every lane's sweep count).
func (c *packedCore) Sweeps() int64 { return c.sweeps }

// ReseedLane replaces lane r's randomness source.
func (c *packedCore) ReseedLane(r int, src *rng.Source) { c.srcs[r] = src }

// UpdateLaneBiases replaces lane r's bias vector and adjusts its local
// fields incrementally in O(N) — the same arithmetic, in the same order,
// as the scalar machines' UpdateBiases.
func (c *packedCore) UpdateLaneBiases(r int, h vecmat.Vec) {
	if len(h) != c.n {
		panic("pbit: UpdateLaneBiases dimension mismatch")
	}
	for i := 0; i < c.n; i++ {
		idx := i*Lanes + r
		c.fields[idx] += h[i] - c.hb[idx]
		c.hb[idx] = h[i]
	}
}

// LaneStateInto copies lane r's configuration into dst.
func (c *packedCore) LaneStateInto(dst ising.Spins, r int) {
	if len(dst) != c.n {
		panic("pbit: LaneStateInto dimension mismatch")
	}
	for i, w := range c.states {
		dst[i] = int8(int64(w>>r&1)*2 - 1)
	}
}

// setAllLanesBits installs one configuration on every lane (fields are the
// caller's responsibility).
func (c *packedCore) setAllLanesBits(s ising.Spins) {
	if len(s) != c.n {
		panic("pbit: SetAllLanesState dimension mismatch")
	}
	for i, v := range s {
		if v == 1 {
			c.states[i] = ^uint64(0)
		} else {
			c.states[i] = 0
		}
	}
}

// randomizeBits draws a fresh uniform configuration per lane, each lane
// consuming exactly the draws — in the same order — a scalar Randomize
// with the same source would (one Bool(0.5) per spin).
func (c *packedCore) randomizeBits() {
	for i := range c.states {
		c.states[i] = 0
	}
	for r := 0; r < Lanes; r++ {
		src := c.srcs[r]
		bit := uint64(1) << r
		for i := 0; i < c.n; i++ {
			if src.Bool(0.5) {
				c.states[i] |= bit
			}
		}
	}
}

// fillNoise batch-draws each lane's per-sweep noise into the lane-blocked
// buffer: lane r's draw for spin i lands at noise[i·64+r], preserving each
// lane's scalar stream order (one Sym per spin).
//
//saim:hotpath
func (c *packedCore) fillNoise() {
	for g := 0; g < laneGroups; g += 2 {
		b := g * 4
		oct := [8]*rng.Source{
			c.srcs[b], c.srcs[b+1], c.srcs[b+2], c.srcs[b+3],
			c.srcs[b+4], c.srcs[b+5], c.srcs[b+6], c.srcs[b+7],
		}
		rng.FillSym8Strided(&oct, c.noise[b:], c.n, Lanes)
	}
}

// spinFloats expands the packed states into ±1.0 per (spin, lane) using
// dst as scratch (length n·Lanes).
func (c *packedCore) spinFloats(dst []float64) {
	for i, w := range c.states {
		for r := 0; r < Lanes; r++ {
			dst[i*Lanes+r] = float64(int64(w>>r&1)*2 - 1)
		}
	}
}

// PackedMachine sweeps 64 replicas of one Hamiltonian over dense J rows.
// It is not safe for concurrent use. See the package comment above for the
// packing layout and the trajectory-identity contract.
type PackedMachine struct {
	packedCore
	model *ising.Model
}

// NewPacked returns a dense packed machine with every lane's spins at −1
// and per-lane sources split off src (in lane order). ReseedLane overrides
// individual lanes; the model must satisfy Validate.
func NewPacked(model *ising.Model, src *rng.Source) *PackedMachine {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("pbit: invalid model: %v", err))
	}
	m := &PackedMachine{
		packedCore: newPackedCore(model.H, src),
		model:      model,
	}
	m.RecomputeFields()
	return m
}

// Model returns the shared Hamiltonian (read-only for the machine: biases
// live in private per-lane copies).
func (m *PackedMachine) Model() *ising.Model { return m.model }

// RecomputeFields rebuilds every lane's local fields from scratch,
// replicating the scalar LocalField accumulation order per lane: for each
// spin i, start from h_i and add J_ij·m_j for j = 0…n−1.
func (m *PackedMachine) RecomputeFields() {
	m.spinFloats(m.noise) // noise is dead outside Sweep; reuse as scratch
	for i := 0; i < m.n; i++ {
		row := m.model.J.Row(i)
		acc := m.fields[i*Lanes : i*Lanes+Lanes]
		copy(acc, m.hb[i*Lanes:i*Lanes+Lanes])
		for j, w := range row {
			if w == 0 {
				continue // adds only ±0, which no lane's decisions can see
			}
			sf := m.noise[j*Lanes : j*Lanes+Lanes]
			for r := 0; r < Lanes; r++ {
				acc[r] += w * sf[r]
			}
		}
	}
}

// SetAllLanesState installs one configuration on every lane.
func (m *PackedMachine) SetAllLanesState(s ising.Spins) {
	m.setAllLanesBits(s)
	m.RecomputeFields()
}

// Randomize draws a fresh uniform configuration per lane.
func (m *PackedMachine) Randomize() {
	m.randomizeBits()
	m.RecomputeFields()
}

// Sweep runs one Monte-Carlo sweep of all 64 lanes: per spin, one packed
// threshold pass turns 64 wantSpin decisions into a comparison-mask word
// (saturation shortcut preserved per lane), the flip mask is XOR-ed into
// the state word, and the J row is walked once, adding ±2w per flipped
// lane via sign-select deltas. Single-lane flips — the common case once
// the anneal cools — take a strided scalar walk instead, which costs
// exactly one scalar machine's flip.
//
//saim:hotpath
func (m *PackedMachine) Sweep(beta float64) {
	n := m.n
	if n == 0 {
		m.sweeps++
		return
	}
	m.fillNoise()
	for i := 0; i < n; i++ {
		base := i * Lanes
		want := packedWant(beta, m.fields[base:base+Lanes], m.noise[base:base+Lanes])
		fl := want ^ m.states[i]
		if fl == 0 {
			continue
		}
		m.states[i] = want
		row := m.model.J.Row(i)
		if fl&(fl-1) == 0 {
			r := bits.TrailingZeros64(fl)
			delta := -2.0
			if want>>uint(r)&1 != 0 {
				delta = 2.0
			}
			flipApplySingleDense(row, m.fields[r:], delta)
		} else {
			ng := buildDeltas(fl, want, &m.d, &m.groups)
			flipApplyDense(row, m.fields, &m.d, m.groups[:ng])
		}
	}
	m.sweeps++
}

// AnnealRun runs one annealing run on every lane: fresh random start, then
// `sweeps` packed sweeps with β following sched (cf. Machine.AnnealInto).
func (m *PackedMachine) AnnealRun(sched schedule.Schedule, sweeps int) {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
}

// AnnealFromRun continues annealing from the current lane states without
// re-randomizing (the warm-start path, cf. Machine.AnnealFromInto).
func (m *PackedMachine) AnnealFromRun(sched schedule.Schedule, sweeps int) {
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
}

// LaneFieldConsistencyError returns the worst drift between lane r's
// incrementally-maintained fields and a from-scratch recomputation over
// its private biases (test hook).
func (m *PackedMachine) LaneFieldConsistencyError(r int) float64 {
	worst := 0.0
	for i := 0; i < m.n; i++ {
		acc := m.hb[i*Lanes+r]
		for j, w := range m.model.J.Row(i) {
			acc += w * float64(int64(m.states[j]>>r&1)*2-1)
		}
		d := m.fields[i*Lanes+r] - acc
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
