package exact

import (
	"testing"
	"time"

	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
)

func TestKnapsackDPByHand(t *testing.T) {
	// Classic: v=(60,100,120), w=(10,20,30), cap=50 ⇒ 220 taking items 2,3.
	x, v := KnapsackDP([]int{60, 100, 120}, []int{10, 20, 30}, 50)
	if v != 220 {
		t.Fatalf("value = %d, want 220", v)
	}
	if x[0] != 0 || x[1] != 1 || x[2] != 1 {
		t.Fatalf("x = %v", x)
	}
}

func TestKnapsackDPZeroCapacity(t *testing.T) {
	x, v := KnapsackDP([]int{5}, []int{1}, 0)
	if v != 0 || x[0] != 0 {
		t.Fatalf("zero capacity: v=%d x=%v", v, x)
	}
}

func TestKnapsackDPPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted negative data")
		}
	}()
	KnapsackDP([]int{-1}, []int{1}, 5)
}

// SolveQKP with zero pair values must agree with the knapsack DP.
func TestSolveQKPMatchesDPOnLinearInstances(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := qkp.Generate(18, 0.25, int(seed), seed)
		for i := range inst.W {
			for j := range inst.W[i] {
				inst.W[i][j] = 0
			}
		}
		inst.Density = 0.25 // keep Validate happy about the nominal density
		res, err := SolveQKP(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, want := KnapsackDP(inst.H, inst.A, inst.B)
		if !res.Optimal {
			t.Fatal("linear QKP not proven optimal")
		}
		if res.Value != want {
			t.Fatalf("seed %d: B&B %d vs DP %d", seed, res.Value, want)
		}
	}
}

// SolveQKP must agree with brute force on small dense instances.
func TestSolveQKPMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		inst := qkp.Generate(14, 0.5, int(seed), seed*3+1)
		bb, err := SolveQKP(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceQKP(inst)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Value != bf.Value {
			t.Fatalf("seed %d: B&B %d vs brute force %d", seed, bb.Value, bf.Value)
		}
		if !inst.Feasible(bb.X) {
			t.Fatal("B&B returned infeasible solution")
		}
		if inst.Value(bb.X) != bb.Value {
			t.Fatal("B&B value inconsistent with its own solution")
		}
	}
}

func TestSolveMKPMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		inst := mkp.Generate(14, 3, 0.5, int(seed), seed*7+5)
		bb, err := SolveMKP(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceMKP(inst)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Value != bf.Value {
			t.Fatalf("seed %d: B&B %d vs brute force %d", seed, bb.Value, bf.Value)
		}
		if !inst.Feasible(bb.X) {
			t.Fatal("B&B returned infeasible solution")
		}
		if !bb.Optimal {
			t.Fatal("small MKP not proven optimal")
		}
	}
}

func TestSolveMKPSingleConstraintMatchesDP(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		inst := mkp.Generate(20, 1, 0.5, int(seed), seed+99)
		// Scale weights down so the DP table stays small.
		for j := 0; j < inst.N; j++ {
			inst.A[0][j] = inst.A[0][j]%50 + 1
		}
		sum := 0
		for _, w := range inst.A[0] {
			sum += w
		}
		inst.B[0] = sum / 2
		bb, err := SolveMKP(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, want := KnapsackDP(inst.H, inst.A[0], inst.B[0])
		if bb.Value != want {
			t.Fatalf("seed %d: B&B %d vs DP %d", seed, bb.Value, want)
		}
	}
}

func TestSolveMKPMediumInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("medium B&B in -short mode")
	}
	inst := mkp.Generate(40, 5, 0.5, 1, 42)
	res, err := SolveMKP(inst, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 {
		t.Fatalf("suspicious optimum %d", res.Value)
	}
	if !inst.Feasible(res.X) {
		t.Fatal("infeasible solution")
	}
	if inst.Value(res.X) != res.Value {
		t.Fatal("value inconsistent with solution")
	}
}

func TestNodeLimitTruncates(t *testing.T) {
	inst := mkp.Generate(30, 5, 0.5, 1, 7)
	res, err := SolveMKP(inst, Options{NodeLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("3-node search claimed optimality")
	}
	// Even truncated searches return the greedy warm start.
	if res.Value <= 0 {
		t.Fatalf("no incumbent: %d", res.Value)
	}
}

func TestBruteForceSizeGuard(t *testing.T) {
	inst := qkp.Generate(26, 0.5, 1, 1)
	if _, err := BruteForceQKP(inst); err == nil {
		t.Fatal("brute force accepted N=26")
	}
	m := mkp.Generate(26, 2, 0.5, 1, 1)
	if _, err := BruteForceMKP(m); err == nil {
		t.Fatal("brute force accepted N=26")
	}
}

func TestResultsReportCostAsNegativeValue(t *testing.T) {
	inst := qkp.Generate(10, 0.5, 1, 3)
	res, err := SolveQKP(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != -float64(res.Value) {
		t.Fatalf("Cost %v vs Value %d", res.Cost, res.Value)
	}
	if res.Elapsed < 0 {
		t.Fatal("negative elapsed time")
	}
}
