// Package exact provides certified solvers for the benchmark problems:
//
//   - SolveMKP: branch and bound with LP-relaxation bounds (via
//     internal/simplex), the stand-in for the Matlab intlinprog runs the
//     paper uses to obtain MKP optima and the "B&B time" column of Table V;
//   - SolveQKP: branch and bound with a fractional (Dantzig-style) upper
//     bound on an optimistic linearization of the pair values;
//   - KnapsackDP: the classic dynamic program for single-constraint linear
//     knapsacks, used as an independent reference in tests.
//
// All solvers maximize collected value, matching the knapsack convention;
// results also report the minimization cost −value used elsewhere.
package exact

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/simplex"
)

// Options bounds the search effort.
type Options struct {
	// NodeLimit caps explored branch-and-bound nodes (0 = 50 million).
	NodeLimit int
	// TimeLimit caps wall-clock time (0 = no limit).
	TimeLimit time.Duration
}

func (o Options) nodeLimit() int {
	if o.NodeLimit <= 0 {
		return 50_000_000
	}
	return o.NodeLimit
}

// Result is the outcome of an exact solve.
type Result struct {
	// X is the best assignment found.
	X ising.Bits
	// Value is the collected value hᵀx (+ pair values for QKP).
	Value int
	// Cost is −Value, the minimization objective.
	Cost float64
	// Optimal reports whether optimality was proven (limits not hit).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// KnapsackDP solves max Σ v_j x_j s.t. Σ w_j x_j ≤ capacity exactly by
// dynamic programming over capacities. It panics on negative inputs.
func KnapsackDP(values, weights []int, capacity int) (ising.Bits, int) {
	n := len(values)
	if len(weights) != n {
		panic("exact: KnapsackDP dimension mismatch")
	}
	if capacity < 0 {
		panic("exact: negative capacity")
	}
	for j := 0; j < n; j++ {
		if values[j] < 0 || weights[j] < 0 {
			panic("exact: negative knapsack data")
		}
	}
	// best[c] = best value with capacity c; keep[j][c] marks item taken.
	best := make([]int, capacity+1)
	keep := make([][]bool, n)
	for j := 0; j < n; j++ {
		keep[j] = make([]bool, capacity+1)
		w, v := weights[j], values[j]
		for c := capacity; c >= w; c-- {
			if cand := best[c-w] + v; cand > best[c] {
				best[c] = cand
				keep[j][c] = true
			}
		}
	}
	x := make(ising.Bits, n)
	c := capacity
	for j := n - 1; j >= 0; j-- {
		if keep[j][c] {
			x[j] = 1
			c -= weights[j]
		}
	}
	return x, best[capacity]
}

// mkpSearch carries the shared state of the MKP branch and bound.
type mkpSearch struct {
	inst      *mkp.Instance
	order     []int // variable order: decreasing LP pseudo-utility
	bestVal   int
	bestX     ising.Bits
	nodes     int
	nodeLimit int
	deadline  time.Time
	hasDL     bool
	truncated bool
	ctx       context.Context
}

// SolveMKP solves the MKP instance by depth-first branch and bound with
// LP-relaxation upper bounds.
func SolveMKP(inst *mkp.Instance, opt Options) (*Result, error) {
	return SolveMKPContext(context.Background(), inst, opt)
}

// SolveMKPContext is SolveMKP under a context, checked every few dozen
// branch-and-bound nodes. On cancellation the incumbent (best-so-far)
// solution is returned with Optimal == false and a nil error.
func SolveMKPContext(ctx context.Context, inst *mkp.Instance, opt Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	s := &mkpSearch{
		inst:      inst,
		nodeLimit: opt.nodeLimit(),
		bestX:     make(ising.Bits, inst.N),
		ctx:       ctx,
	}
	if opt.TimeLimit > 0 {
		s.deadline = start.Add(opt.TimeLimit)
		s.hasDL = true
	}

	// Variable order: decreasing value per unit of aggregate weight —
	// strong branching order for knapsack-type problems.
	s.order = make([]int, inst.N)
	util := make([]float64, inst.N)
	for j := 0; j < inst.N; j++ {
		s.order[j] = j
		agg := 0.0
		for i := 0; i < inst.M; i++ {
			if inst.B[i] > 0 {
				agg += float64(inst.A[i][j]) / float64(inst.B[i])
			} else {
				agg += float64(inst.A[i][j])
			}
		}
		if agg == 0 {
			agg = 1e-12
		}
		util[j] = float64(inst.H[j]) / agg
	}
	sort.Slice(s.order, func(a, b int) bool { return util[s.order[a]] > util[s.order[b]] })

	// Greedy warm start along the branching order.
	greedyX := make(ising.Bits, inst.N)
	residual := append([]int(nil), inst.B...)
	greedyVal := 0
	for _, j := range s.order {
		fits := true
		for i := 0; i < inst.M; i++ {
			if inst.A[i][j] > residual[i] {
				fits = false
				break
			}
		}
		if fits {
			greedyX[j] = 1
			greedyVal += inst.H[j]
			for i := 0; i < inst.M; i++ {
				residual[i] -= inst.A[i][j]
			}
		}
	}
	s.bestVal = greedyVal
	copy(s.bestX, greedyX)

	fixed := make([]int8, inst.N) // -1 free, 0/1 fixed
	for j := range fixed {
		fixed[j] = -1
	}
	rhs := append([]int(nil), inst.B...)
	s.dfs(fixed, rhs, 0)

	res := &Result{
		X:       s.bestX,
		Value:   s.bestVal,
		Cost:    -float64(s.bestVal),
		Optimal: !s.truncated,
		Nodes:   s.nodes,
		Elapsed: time.Since(start),
	}
	return res, nil
}

// dfs explores the subtree with the given fixing; rhs already accounts for
// fixed-to-1 items. base is the value of fixed-to-1 items.
func (s *mkpSearch) dfs(fixed []int8, rhs []int, base int) {
	// Once truncated (node limit, deadline, or cancellation), unwind the
	// whole recursion instead of continuing into sibling branches.
	if s.truncated {
		return
	}
	s.nodes++
	if s.nodes > s.nodeLimit ||
		(s.nodes%64 == 0 && (s.ctx.Err() != nil || (s.hasDL && time.Now().After(s.deadline)))) {
		s.truncated = true
		return
	}
	inst := s.inst
	// Collect free variables.
	var free []int
	for _, j := range s.order {
		if fixed[j] < 0 {
			free = append(free, j)
		}
	}
	if len(free) == 0 {
		if base > s.bestVal {
			s.bestVal = base
			for j := range fixed {
				s.bestX[j] = fixed[j]
			}
		}
		return
	}
	// LP relaxation over free variables.
	lp := simplex.Problem{
		C: make([]float64, len(free)),
		A: make([][]float64, inst.M),
		B: make([]float64, inst.M),
	}
	for k, j := range free {
		lp.C[k] = float64(inst.H[j])
	}
	for i := 0; i < inst.M; i++ {
		lp.A[i] = make([]float64, len(free))
		for k, j := range free {
			lp.A[i][k] = float64(inst.A[i][j])
		}
		lp.B[i] = float64(rhs[i])
	}
	sol, err := simplex.MaximizeBoxed(lp)
	if err != nil || sol.Status != simplex.Optimal {
		// Numerical trouble: fall back to the loose bound Σ free values.
		loose := base
		for _, j := range free {
			loose += inst.H[j]
		}
		if loose <= s.bestVal {
			return
		}
	} else {
		ub := base + int(math.Floor(sol.Value+1e-6))
		if ub <= s.bestVal {
			return
		}
		// Integral LP solution: accept directly.
		integral := true
		for _, x := range sol.X {
			if x > 1e-6 && x < 1-1e-6 {
				integral = false
				break
			}
		}
		if integral {
			val := base
			for k, j := range free {
				if sol.X[k] > 0.5 {
					val += inst.H[j]
				}
			}
			if val > s.bestVal {
				s.bestVal = val
				for j := range fixed {
					if fixed[j] >= 0 {
						s.bestX[j] = fixed[j]
					} else {
						s.bestX[j] = 0
					}
				}
				for k, j := range free {
					if sol.X[k] > 0.5 {
						s.bestX[j] = 1
					}
				}
			}
			return
		}
	}

	// Branch on the first free variable in utility order (down-branching
	// on the most attractive item first).
	j := free[0]
	// Try x_j = 1 if it fits.
	fits := true
	for i := 0; i < inst.M; i++ {
		if inst.A[i][j] > rhs[i] {
			fits = false
			break
		}
	}
	if fits {
		fixed[j] = 1
		for i := 0; i < inst.M; i++ {
			rhs[i] -= inst.A[i][j]
		}
		newBase := base + inst.H[j]
		if newBase > s.bestVal {
			// Leaf update even before recursing: all-zero completion.
			s.bestVal = newBase
			for jj := range fixed {
				if fixed[jj] == 1 {
					s.bestX[jj] = 1
				} else {
					s.bestX[jj] = 0
				}
			}
		}
		s.dfs(fixed, rhs, newBase)
		for i := 0; i < inst.M; i++ {
			rhs[i] += inst.A[i][j]
		}
	}
	fixed[j] = 0
	s.dfs(fixed, rhs, base)
	fixed[j] = -1
}

// qkpSearch carries the shared state of the QKP branch and bound.
type qkpSearch struct {
	inst      *qkp.Instance
	order     []int
	rankCache []int
	bestVal   int
	bestX     ising.Bits
	nodes     int
	nodeLimit int
	deadline  time.Time
	hasDL     bool
	truncated bool
	ctx       context.Context
}

// SolveQKP solves the QKP instance by depth-first branch and bound. The
// upper bound at each node linearizes pair values optimistically (every
// pair value is credited to both endpoints) and applies a fractional
// knapsack fill; this is valid but loose, so the solver is intended for
// instances up to a few dozen items — enough to certify the reduced-scale
// experiment suites.
func SolveQKP(inst *qkp.Instance, opt Options) (*Result, error) {
	return SolveQKPContext(context.Background(), inst, opt)
}

// SolveQKPContext is SolveQKP under a context, checked every few hundred
// branch-and-bound nodes. On cancellation the incumbent (best-so-far)
// solution is returned with Optimal == false and a nil error.
func SolveQKPContext(ctx context.Context, inst *qkp.Instance, opt Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	s := &qkpSearch{
		inst:      inst,
		nodeLimit: opt.nodeLimit(),
		bestX:     make(ising.Bits, inst.N),
		ctx:       ctx,
	}
	if opt.TimeLimit > 0 {
		s.deadline = start.Add(opt.TimeLimit)
		s.hasDL = true
	}
	// Order by optimistic density.
	s.order = make([]int, inst.N)
	dens := make([]float64, inst.N)
	for j := 0; j < inst.N; j++ {
		s.order[j] = j
		opt := inst.H[j]
		for i := 0; i < inst.N; i++ {
			opt += inst.W[j][i]
		}
		dens[j] = float64(opt) / float64(inst.A[j])
	}
	sort.Slice(s.order, func(a, b int) bool { return dens[s.order[a]] > dens[s.order[b]] })

	// Greedy warm start.
	x := make(ising.Bits, inst.N)
	residual := inst.B
	for _, j := range s.order {
		if inst.A[j] <= residual {
			x[j] = 1
			residual -= inst.A[j]
		}
	}
	s.bestVal = inst.Value(x)
	copy(s.bestX, x)

	cur := make(ising.Bits, inst.N)
	s.dfsQKP(cur, 0, 0, inst.B)

	return &Result{
		X:       s.bestX,
		Value:   s.bestVal,
		Cost:    -float64(s.bestVal),
		Optimal: !s.truncated,
		Nodes:   s.nodes,
		Elapsed: time.Since(start),
	}, nil
}

// dfsQKP explores assignments to s.order[depth:]; val is the value of the
// current partial selection and residual the remaining capacity.
func (s *qkpSearch) dfsQKP(cur ising.Bits, depth, val, residual int) {
	// Once truncated (node limit, deadline, or cancellation), unwind the
	// whole recursion instead of continuing into sibling branches.
	if s.truncated {
		return
	}
	s.nodes++
	if s.nodes > s.nodeLimit ||
		(s.nodes%256 == 0 && (s.ctx.Err() != nil || (s.hasDL && time.Now().After(s.deadline)))) {
		s.truncated = true
		return
	}
	inst := s.inst
	if val > s.bestVal {
		s.bestVal = val
		copy(s.bestX, cur)
	}
	if depth == inst.N {
		return
	}
	// Upper bound: optimistic density fill of remaining items.
	if s.upperBound(cur, depth, val, residual) <= s.bestVal {
		return
	}
	j := s.order[depth]
	if inst.A[j] <= residual {
		// Take j: add its value plus pair values with already-selected items.
		gain := inst.H[j]
		for i := 0; i < inst.N; i++ {
			if cur[i] != 0 {
				gain += inst.W[j][i]
			}
		}
		cur[j] = 1
		s.dfsQKP(cur, depth+1, val+gain, residual-inst.A[j])
		cur[j] = 0
	}
	s.dfsQKP(cur, depth+1, val, residual)
}

// upperBound returns an optimistic value bound for completing cur from
// depth onward: each remaining item is credited its full value plus all
// pair values with selected items and *all* other remaining items, then a
// fractional Dantzig fill is applied.
func (s *qkpSearch) upperBound(cur ising.Bits, depth, val, residual int) int {
	inst := s.inst
	type cand struct {
		opt    float64
		weight int
	}
	cands := make([]cand, 0, inst.N-depth)
	for k := depth; k < inst.N; k++ {
		j := s.order[k]
		opt := float64(inst.H[j])
		for i := 0; i < inst.N; i++ {
			if cur[i] != 0 || (i != j && s.rank(i) >= depth) {
				opt += float64(inst.W[j][i])
			}
		}
		cands = append(cands, cand{opt: opt, weight: inst.A[j]})
	}
	sort.Slice(cands, func(a, b int) bool {
		return cands[a].opt/float64(cands[a].weight) > cands[b].opt/float64(cands[b].weight)
	})
	bound := float64(val)
	rem := float64(residual)
	for _, c := range cands {
		w := float64(c.weight)
		if w <= rem {
			bound += c.opt
			rem -= w
		} else {
			bound += c.opt * rem / w
			break
		}
	}
	return int(math.Floor(bound + 1e-9))
}

// rank returns the position of item j in the branching order. Precomputed
// lazily into a cache on first use.
func (s *qkpSearch) rank(j int) int {
	if s.rankCache == nil {
		s.rankCache = make([]int, s.inst.N)
		for pos, jj := range s.order {
			s.rankCache[jj] = pos
		}
	}
	return s.rankCache[j]
}

// BruteForceQKP enumerates all 2^N assignments (N ≤ 25) and returns the
// optimum. It is a test oracle, not a production solver.
func BruteForceQKP(inst *qkp.Instance) (*Result, error) {
	if inst.N > 25 {
		return nil, fmt.Errorf("exact: brute force limited to N ≤ 25, got %d", inst.N)
	}
	start := time.Now()
	best := -1
	bestX := make(ising.Bits, inst.N)
	x := make(ising.Bits, inst.N)
	for mask := 0; mask < 1<<inst.N; mask++ {
		for j := 0; j < inst.N; j++ {
			x[j] = int8(mask >> j & 1)
		}
		if !inst.Feasible(x) {
			continue
		}
		if v := inst.Value(x); v > best {
			best = v
			copy(bestX, x)
		}
	}
	return &Result{X: bestX, Value: best, Cost: -float64(best), Optimal: true,
		Nodes: 1 << inst.N, Elapsed: time.Since(start)}, nil
}

// BruteForceMKP enumerates all 2^N assignments (N ≤ 25).
func BruteForceMKP(inst *mkp.Instance) (*Result, error) {
	if inst.N > 25 {
		return nil, fmt.Errorf("exact: brute force limited to N ≤ 25, got %d", inst.N)
	}
	start := time.Now()
	best := -1
	bestX := make(ising.Bits, inst.N)
	x := make(ising.Bits, inst.N)
	for mask := 0; mask < 1<<inst.N; mask++ {
		for j := 0; j < inst.N; j++ {
			x[j] = int8(mask >> j & 1)
		}
		if !inst.Feasible(x) {
			continue
		}
		if v := inst.Value(x); v > best {
			best = v
			copy(bestX, x)
		}
	}
	return &Result{X: bestX, Value: best, Cost: -float64(best), Optimal: true,
		Nodes: 1 << inst.N, Elapsed: time.Since(start)}, nil
}
