package coloring

import (
	"testing"

	"github.com/ising-machines/saim/internal/ising"
)

func TestConflictsByHand(t *testing.T) {
	g := Cycle(4)
	if c := g.Conflicts([]int{0, 1, 0, 1}); c != 0 {
		t.Fatalf("proper 2-coloring has %d conflicts", c)
	}
	if c := g.Conflicts([]int{0, 0, 0, 0}); c != 4 {
		t.Fatalf("monochrome C4 has %d conflicts, want 4", c)
	}
}

func TestGreedyProper(t *testing.T) {
	g := Random(30, 0.3, 5)
	colors, used := Greedy(g)
	if g.Conflicts(colors) != 0 {
		t.Fatal("greedy produced conflicts")
	}
	if used < 1 || used > 30 {
		t.Fatalf("colors used = %d", used)
	}
}

func TestDecode(t *testing.T) {
	g := NewGraph(2)
	// k=2; x = (v0→c1, v1→c0), plus no slack bits for equalities.
	x := ising.Bits{0, 1, 1, 0}
	colors, ok := Decode(g, 2, x)
	if !ok || colors[0] != 1 || colors[1] != 0 {
		t.Fatalf("Decode = %v, %v", colors, ok)
	}
	// Two colors on one vertex ⇒ not one-hot.
	if _, ok := Decode(g, 2, ising.Bits{1, 1, 1, 0}); ok {
		t.Fatal("accepted double-hot vertex")
	}
	// No color ⇒ not one-hot.
	if _, ok := Decode(g, 2, ising.Bits{0, 0, 1, 0}); ok {
		t.Fatal("accepted zero-hot vertex")
	}
}

func TestToProblemStructure(t *testing.T) {
	g := Cycle(5)
	p := ToProblem(g, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ext.NOrig != 15 {
		t.Fatalf("NOrig = %d", p.Ext.NOrig)
	}
	// Equality constraints must add no slack bits.
	if p.Ext.NTotal != p.Ext.NOrig {
		t.Fatalf("NTotal = %d, want %d", p.Ext.NTotal, p.Ext.NOrig)
	}
	if p.Ext.M() != 5 {
		t.Fatalf("M = %d", p.Ext.M())
	}
}

func TestSolveTwoColorsBipartite(t *testing.T) {
	// Even cycle is 2-colorable.
	g := Cycle(8)
	res, err := Solve(g, 2, Options{Iterations: 200, SweepsPerRun: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Colors == nil {
		t.Fatal("no feasible one-hot sample")
	}
	if !res.Proper {
		t.Fatalf("C8 with 2 colors left %d conflicts", res.Conflicts)
	}
}

func TestSolveOddCycleNeedsThree(t *testing.T) {
	g := Cycle(7)
	// With 2 colors a proper coloring is impossible; best is 1 conflict.
	two, err := Solve(g, 2, Options{Iterations: 250, SweepsPerRun: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if two.Colors != nil && two.Proper {
		t.Fatal("odd cycle 2-colored — impossible")
	}
	if two.Colors != nil && two.Conflicts < 1 {
		t.Fatalf("conflicts = %d", two.Conflicts)
	}
	// With 3 colors SAIM should find a proper coloring.
	three, err := Solve(g, 3, Options{Iterations: 300, SweepsPerRun: 250, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if three.Colors == nil || !three.Proper {
		t.Fatalf("C7 not properly 3-colored: %+v", three)
	}
}

func TestSolveRandomGraphMatchesGreedyBudget(t *testing.T) {
	g := Random(12, 0.35, 9)
	_, kGreedy := Greedy(g)
	res, err := Solve(g, kGreedy, Options{Iterations: 300, SweepsPerRun: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Colors == nil {
		t.Fatal("no feasible sample")
	}
	if !res.Proper {
		t.Fatalf("SAIM left %d conflicts with greedy's color budget %d", res.Conflicts, kGreedy)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(10, 0.5, 1)
	b := Random(10, 0.5, 1)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed, different graphs")
	}
}

func TestGraphPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGraph(0) },
		func() { NewGraph(2).AddEdge(0, 0) },
		func() { NewGraph(2).AddEdge(0, 9) },
		func() { ToProblem(Cycle(3), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
