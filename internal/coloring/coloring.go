// Package coloring solves graph k-coloring with the self-adaptive Ising
// machine, demonstrating SAIM on *equality* constraints (the one-hot rows
// Σ_c x_{v,c} = 1). Constraints of this shape model the "sequences of
// operations for job-shop scheduling" and assignment structures the
// paper's introduction lists as motivating applications.
//
// Encoding: binary variable x_{v,c} (vertex v gets color c); the objective
// counts monochromatic edges Σ_{(u,v)∈E} Σ_c x_{u,c}·x_{v,c}, and each
// vertex carries the equality constraint Σ_c x_{v,c} = 1. A zero-cost
// feasible sample is a proper coloring.
package coloring

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Graph is an unweighted undirected graph on [0, N).
type Graph struct {
	N     int
	Edges [][2]int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("coloring: NewGraph requires n > 0")
	}
	return &Graph{N: n}
}

// AddEdge appends an undirected edge.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N || u == v {
		panic(fmt.Sprintf("coloring: bad edge (%d,%d)", u, v))
	}
	g.Edges = append(g.Edges, [2]int{u, v})
}

// Random draws a G(n,p) graph deterministically from seed.
func Random(n int, p float64, seed uint64) *Graph {
	src := rng.New(seed)
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Bool(p) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Conflicts counts monochromatic edges under the given color assignment.
func (g *Graph) Conflicts(colors []int) int {
	if len(colors) != g.N {
		panic("coloring: Conflicts dimension mismatch")
	}
	c := 0
	for _, e := range g.Edges {
		if colors[e[0]] == colors[e[1]] {
			c++
		}
	}
	return c
}

// Greedy colors vertices in index order with the smallest available color
// and returns the assignment plus the number of colors used. It upper-
// bounds the chromatic number (≤ maxdegree+1).
func Greedy(g *Graph) ([]int, int) {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	used := 0
	for v := 0; v < g.N; v++ {
		taken := map[int]bool{}
		for _, u := range adj[v] {
			if colors[u] >= 0 {
				taken[colors[u]] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		colors[v] = c
		if c+1 > used {
			used = c + 1
		}
	}
	return colors, used
}

// ToProblem encodes k-coloring of g as a SAIM problem over N·k one-hot
// variables.
func ToProblem(g *Graph, k int) *core.Problem {
	if k < 1 {
		panic("coloring: k must be ≥ 1")
	}
	nVars := g.N * k
	idx := func(v, c int) int { return v*k + c }

	sys := constraint.NewSystem(nVars)
	for v := 0; v < g.N; v++ {
		row := vecmat.NewVec(nVars)
		for c := 0; c < k; c++ {
			row[idx(v, c)] = 1
		}
		sys.Add(row, constraint.EQ, 1)
	}
	ext := sys.Extend(constraint.Binary) // equalities: no slack bits
	ext.Normalize()

	obj := ising.NewQUBO(ext.NTotal)
	for _, e := range g.Edges {
		for c := 0; c < k; c++ {
			obj.AddQuad(idx(e[0], c), idx(e[1], c), 1)
		}
	}
	obj.Normalize()

	gCopy := *g
	return &core.Problem{
		Objective: obj,
		Ext:       ext,
		Cost: func(x ising.Bits) float64 {
			colors, ok := Decode(&gCopy, k, x)
			if !ok {
				// Defensive: feasibility gating should prevent this.
				return math.Inf(1)
			}
			return float64(gCopy.Conflicts(colors))
		},
		// One-hot rows couple k(k-1)/2 pairs per vertex plus edge terms;
		// use the measured density (leave zero).
	}
}

// Decode maps a one-hot assignment back to colors. ok is false when some
// vertex is not exactly-one-hot.
func Decode(g *Graph, k int, x ising.Bits) ([]int, bool) {
	colors := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		found := -1
		for c := 0; c < k; c++ {
			if x[v*k+c] == 1 {
				if found >= 0 {
					return nil, false
				}
				found = c
			}
		}
		if found < 0 {
			return nil, false
		}
		colors[v] = found
	}
	return colors, true
}

// Options tunes Solve; zero values get coloring-appropriate defaults.
type Options struct {
	Iterations   int
	SweepsPerRun int
	Eta          float64
	Penalty      float64
	BetaMax      float64
	Seed         uint64
}

// Result reports a coloring attempt.
type Result struct {
	// Colors is the best feasible assignment found (nil if none).
	Colors []int
	// Conflicts is the number of monochromatic edges of Colors.
	Conflicts int
	// Proper reports a zero-conflict coloring.
	Proper bool
	// FeasibleRatio is the percentage of one-hot-feasible samples.
	FeasibleRatio float64
}

// Solve runs SAIM on the k-coloring of g.
func Solve(g *Graph, k int, o Options) (*Result, error) {
	p := ToProblem(g, k)
	res, err := core.Solve(p, core.Options{
		Iterations:   defInt(o.Iterations, 300),
		SweepsPerRun: defInt(o.SweepsPerRun, 300),
		Eta:          defF(o.Eta, 1),
		P:            defF(o.Penalty, 2),
		BetaMax:      defF(o.BetaMax, 20),
		Seed:         o.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{FeasibleRatio: res.FeasibleRatio()}
	if res.Best != nil {
		colors, ok := Decode(g, k, res.Best)
		if !ok {
			return nil, fmt.Errorf("coloring: internal error — feasible sample not one-hot")
		}
		out.Colors = colors
		out.Conflicts = g.Conflicts(colors)
		out.Proper = out.Conflicts == 0
	}
	return out, nil
}

func defInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func defF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}
