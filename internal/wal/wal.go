// Package wal implements the segmented append-only journal backing the
// solve service's durable mode.
//
// A log is a directory of numbered segment files ("0000000001.wal",
// "0000000002.wal", ...). Each segment starts with an 8-byte magic and
// holds a sequence of framed records:
//
//	u32  payload length (little-endian)
//	u32  CRC-32C (Castagnoli) of the payload
//	payload:
//	    u8   record kind
//	    u16  job-id length (little-endian)
//	    ...  job id (UTF-8)
//	    ...  data (opaque to the wal; the service stores JSON)
//
// Records never span segments. When an append would push the active
// segment past Config.SegmentBytes, the segment is sealed (synced,
// closed) and a new one is started — so every segment but the last is
// immutable, and recovery cost is bounded by segment size rather than
// log lifetime.
//
// # Recovery semantics
//
// Open replays every segment in sequence order. The two corruption
// classes are deliberately distinct:
//
//   - A torn or invalid tail in the NEWEST segment is the expected
//     signature of a crash mid-write. The tail is silently dropped (and
//     physically truncated so appends resume on a clean boundary).
//   - Any invalid record in an OLDER, sealed segment means bytes that
//     were once durable have been damaged. Open fails with a
//     *CorruptError naming the segment and offset, because silently
//     dropping acknowledged records is worse than refusing to start.
//
// # Fsync policy
//
// SyncAlways fsyncs after every append (durability to the last record,
// slowest). SyncInterval — the default — fsyncs on a background timer
// (bounded loss window, near-SyncOff throughput). SyncOff never fsyncs
// explicitly and rides on OS writeback. Stats reports the append/sync
// lag so callers can expose the current loss window.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/ising-machines/saim/internal/faultkit"
)

// Kind identifies a record type. The wal only frames records; kinds are
// given meaning by the service layer. Kind zero is invalid on disk so a
// zero-filled tail can never parse as a record.
type Kind uint8

// Record kinds journaled by the solve service.
const (
	// KindSubmitted carries everything needed to re-create a job: the
	// canonical model JSON and wire-form options.
	KindSubmitted Kind = 1
	// KindStarted marks a job picked up by a worker (attempt counting).
	KindStarted Kind = 2
	// KindCheckpoint carries a best-so-far assignment + cost snapshot.
	KindCheckpoint Kind = 3
	// KindFinished marks terminal success or failure; compaction drops
	// the job's records.
	KindFinished Kind = 4
	// KindCancelled marks a client cancellation; terminal like Finished.
	KindCancelled Kind = 5
	// KindShutdown is appended by a clean service drain, so recovery can
	// distinguish a crash from an orderly stop.
	KindShutdown Kind = 6
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs on a background timer
	// (Config.SyncEvery, default 100ms): bounded loss window, near
	// SyncOff throughput.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per append.
	SyncAlways
	// SyncOff never fsyncs explicitly; durability rides on OS
	// writeback. Appropriate for tests and reconstructible workloads.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Record is one framed log entry.
type Record struct {
	Kind Kind
	Job  string // job id; may be empty for log-level records (Shutdown)
	Data []byte // opaque payload; nil is stored and replayed as empty
}

// Config tunes a Log. The zero value is ready to use.
type Config struct {
	// SegmentBytes caps each segment file; 0 means 8 MiB. A record
	// larger than the cap still gets written (to a fresh segment of its
	// own) — the cap bounds rotation, not record size.
	SegmentBytes int64
	// Policy selects the fsync policy; zero value is SyncInterval.
	Policy SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval;
	// 0 means 100ms.
	SyncEvery time.Duration
}

const (
	magic           = "SAIMWAL1"
	headerSize      = int64(len(magic))
	frameHeaderSize = 8 // u32 length + u32 crc
	envelopeMin     = 3 // u8 kind + u16 job length

	// MaxRecordBytes bounds a single payload. Replay treats a larger
	// claimed length as corruption instead of allocating it, so a
	// bit-flipped length field cannot OOM recovery.
	MaxRecordBytes = 64 << 20

	defaultSegmentBytes = 8 << 20
	defaultSyncEvery    = 100 * time.Millisecond

	// writeBufBytes sizes the userspace append buffer. Frames accumulate
	// here and reach the kernel only at sync barriers (fsync, rotation,
	// compaction, close), so an append is usually just a memcpy.
	writeBufBytes = 64 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// CorruptError reports an invalid record inside a sealed (non-newest)
// segment — bytes that were once durable have been damaged, which Open
// refuses to paper over. Torn tails in the newest segment are not
// errors; they are truncated silently.
type CorruptError struct {
	Segment string // segment file path
	Offset  int64  // byte offset of the first invalid record
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in sealed segment %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Stats is a point-in-time snapshot of log health.
type Stats struct {
	Segments int   // segment files on disk
	Bytes    int64 // total bytes across all segments
	Appended int64 // records appended by this process
	Synced   int64 // appended records known flushed to disk
	Lag      int64 // Appended - Synced: the current loss window
	Replayed int   // records recovered by Open
}

// Log is a segmented append-only journal. All methods are safe for
// concurrent use.
type Log struct {
	dir string
	cfg Config

	mu       sync.Mutex
	f        *os.File      // active segment; guarded by mu
	w        *bufio.Writer // buffered appends into f; guarded by mu
	seq      uint64        // active segment sequence number; guarded by mu
	size     int64         // active segment size; guarded by mu
	sealed   int64         // total bytes across sealed segments; guarded by mu
	nseg     int           // segment files on disk, including active; guarded by mu
	appended int64         // guarded by mu
	synced   int64         // guarded by mu
	replayed int           // guarded by mu
	closed   bool          // guarded by mu

	// stop/done are created by Open and immutable afterwards.
	stop chan struct{} // closes the background sync loop
	done chan struct{}

	buf []byte // append scratch, reused under mu; guarded by mu
}

func segName(seq uint64) string { return fmt.Sprintf("%010d.wal", seq) }

// openForAppend opens path for writing positioned at its end. Plain
// O_WRONLY + seek rather than O_APPEND, because a torn-header segment
// needs its magic rewritten at offset zero.
func openForAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return f, nil
}

// Open opens (creating if needed) the log in dir, replays every record
// in order, and positions the log for appending. A torn tail in the
// newest segment is truncated silently; corruption in a sealed segment
// fails with *CorruptError.
func Open(dir string, cfg Config) (*Log, []Record, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = defaultSyncEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, cfg: cfg}
	var all []Record
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		last := i == len(seqs)-1
		recs, valid, err := replaySegment(path, last)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, recs...)
		if !last {
			l.sealed += valid
			continue
		}
		// Truncate any torn tail so appends resume on a clean frame
		// boundary, then reopen the segment for appending.
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		f, err := openForAppend(path)
		if err != nil {
			return nil, nil, err
		}
		l.f, l.seq, l.size = f, seq, valid
		l.w = bufio.NewWriterSize(f, writeBufBytes)
	}
	l.nseg = len(seqs)
	l.replayed = len(all)

	if l.f == nil {
		if err := l.startSegmentLocked(1); err != nil {
			return nil, nil, err
		}
	} else if l.size < headerSize {
		// The newest segment's magic itself was torn (crash during
		// rotation). Rewrite the header in place.
		if err := l.writeHeaderLocked(); err != nil {
			return nil, nil, err
		}
	}

	if cfg.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, all, nil
}

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "%d.wal", &seq); n == 1 && err == nil && e.Name() == segName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replaySegment decodes one segment. For the newest segment the first
// invalid byte ends the replay (valid = offset to truncate at); for a
// sealed segment it is a *CorruptError.
func replaySegment(path string, newest bool) (recs []Record, valid int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	fail := func(off int64, reason string) ([]Record, int64, error) {
		if newest {
			return recs, off, nil
		}
		return nil, 0, &CorruptError{Segment: path, Offset: off, Reason: reason}
	}
	if int64(len(data)) < headerSize || string(data[:headerSize]) != magic {
		// A headerless newest segment is a crash during rotation: keep
		// nothing, truncate to zero, and Open rewrites the magic.
		return fail(0, "bad segment magic")
	}
	off := headerSize
	for off < int64(len(data)) {
		rec, n, reason := decodeFrame(data[off:])
		if reason != "" {
			return fail(off, reason)
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}

// decodeFrame parses one frame from b. On success reason is "" and n is
// the total frame size. On failure reason names the defect; torn vs
// corrupt is decided by the caller (same parse, different segment age).
func decodeFrame(b []byte) (rec Record, n int64, reason string) {
	if len(b) < frameHeaderSize {
		return rec, 0, "truncated frame header"
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if length == 0 {
		return rec, 0, "zero-length frame"
	}
	if length > MaxRecordBytes {
		return rec, 0, "frame length exceeds MaxRecordBytes"
	}
	if int64(len(b)) < frameHeaderSize+int64(length) {
		return rec, 0, "truncated payload"
	}
	payload := b[frameHeaderSize : frameHeaderSize+int64(length)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return rec, 0, "crc mismatch"
	}
	if len(payload) < envelopeMin {
		return rec, 0, "payload shorter than envelope"
	}
	kind := Kind(payload[0])
	if kind == 0 {
		return rec, 0, "zero record kind"
	}
	jobLen := int(binary.LittleEndian.Uint16(payload[1:3]))
	if envelopeMin+jobLen > len(payload) {
		return rec, 0, "job id overruns payload"
	}
	rec.Kind = kind
	rec.Job = string(payload[envelopeMin : envelopeMin+jobLen])
	if rest := payload[envelopeMin+jobLen:]; len(rest) > 0 {
		rec.Data = append([]byte(nil), rest...)
	}
	return rec, frameHeaderSize + int64(length), ""
}

// encodeFrame appends the framed record to dst and returns the result.
func encodeFrame(dst []byte, r Record) ([]byte, error) {
	if len(r.Job) > int(^uint16(0)) {
		return dst, fmt.Errorf("wal: job id %d bytes exceeds %d", len(r.Job), ^uint16(0))
	}
	if r.Kind == 0 {
		return dst, errors.New("wal: record kind must be non-zero")
	}
	payloadLen := envelopeMin + len(r.Job) + len(r.Data)
	if payloadLen > MaxRecordBytes {
		return dst, fmt.Errorf("wal: record payload %d bytes exceeds MaxRecordBytes", payloadLen)
	}
	base := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst = append(dst, byte(r.Kind))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Job)))
	dst = append(dst, r.Job...)
	dst = append(dst, r.Data...)
	payload := dst[base+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

func (l *Log) startSegmentLocked(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.seq, l.size = f, seq, 0
	l.w = bufio.NewWriterSize(f, writeBufBytes)
	l.nseg++
	return l.writeHeaderLocked()
}

func (l *Log) writeHeaderLocked() error {
	if _, err := l.w.WriteString(magic); err != nil {
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.size = headerSize
	return nil
}

// Append frames and writes one record. Under SyncAlways it returns only
// after the record is fsynced.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := faultkit.Inject("wal.append"); err != nil {
		return err
	}
	var err error
	l.buf, err = encodeFrame(l.buf[:0], r)
	if err != nil {
		return err
	}
	if l.size+int64(len(l.buf)) > l.cfg.SegmentBytes && l.size > headerSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	// The single writer under mu keeps frames contiguous; a crash can
	// tear the buffered tail mid-frame, which replay truncates.
	if _, err := l.w.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(l.buf))
	l.appended++
	if l.cfg.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one. Sealed
// segments are always complete: the buffer is flushed (and, unless
// SyncOff, fsynced) before the file is closed.
func (l *Log) rotateLocked() error {
	if l.cfg.Policy != SyncOff {
		if err := l.syncLocked(); err != nil {
			return err
		}
	} else if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.sealed += l.size
	return l.startSegmentLocked(l.seq + 1)
}

// Sync flushes appended records to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) flushLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

func (l *Log) syncLocked() error {
	if err := faultkit.Inject("wal.sync"); err != nil {
		return err
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.synced = l.appended
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.synced != l.appended {
				_ = l.syncLocked() // lag stays visible in Stats on error
			}
			l.mu.Unlock()
		}
	}
}

// Compact rewrites the log keeping only records whose job id satisfies
// keep (records with an empty job id, like Shutdown, are always
// dropped). The kept records are streamed into a single fresh segment,
// fsynced, atomically renamed into place, and only then are the old
// segments deleted — a crash at any point leaves either the old
// segments or a complete new one, and replay is idempotent per job, so
// the crash window where both exist is harmless.
func (l *Log) Compact(keep func(job string) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Buffered appends must reach the active segment file before it is
	// re-read as the rewrite source; non-SyncOff policies also fsync so
	// the source is durable first.
	if l.cfg.Policy != SyncOff {
		if err := l.syncLocked(); err != nil {
			return err
		}
	} else if err := l.flushLocked(); err != nil {
		return err
	}
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	newSeq := l.seq + 1
	tmpPath := filepath.Join(l.dir, segName(newSeq)+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	if _, err := tmp.Write([]byte(magic)); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	var kept int64 = headerSize
	for i, seq := range seqs {
		recs, _, err := replaySegment(filepath.Join(l.dir, segName(seq)), i == len(seqs)-1)
		if err != nil {
			tmp.Close()
			return err
		}
		for _, r := range recs {
			if r.Job == "" || !keep(r.Job) {
				continue
			}
			l.buf, err = encodeFrame(l.buf[:0], r)
			if err != nil {
				tmp.Close()
				return err
			}
			if _, err := tmp.Write(l.buf); err != nil {
				tmp.Close()
				return fmt.Errorf("wal: compact: %w", err)
			}
			kept += int64(len(l.buf))
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	newPath := filepath.Join(l.dir, segName(newSeq))
	if err := os.Rename(tmpPath, newPath); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	l.syncDir()
	// The new segment is durable; retire the old ones.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	for _, seq := range seqs {
		if err := os.Remove(filepath.Join(l.dir, segName(seq))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: compact: %w", err)
		}
	}
	l.syncDir()
	f, err := openForAppend(newPath)
	if err != nil {
		return err
	}
	l.f, l.seq, l.size = f, newSeq, kept
	l.w = bufio.NewWriterSize(f, writeBufBytes)
	l.sealed = 0
	l.nseg = 1
	return nil
}

// syncDir fsyncs the log directory so renames and deletes are durable.
// Best-effort: some filesystems reject directory fsync.
func (l *Log) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Stats returns a snapshot of log health.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments: l.nseg,
		Bytes:    l.sealed + l.size,
		Appended: l.appended,
		Synced:   l.synced,
		Lag:      l.appended - l.synced,
		Replayed: l.replayed,
	}
}

// Close flushes and closes the log. The final sync runs even under
// SyncOff — a clean close should leave nothing in flight.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	syncErr := func() error {
		if err := l.flushLocked(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.synced = l.appended
		return nil
	}()
	closeErr := l.f.Close()
	stop, done := l.stop, l.done
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
