package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to segment replay, in both
// positions a segment can occupy. The invariants under fuzzing:
//
//   - replay never panics, whatever the bytes;
//   - a garbage NEWEST segment is never an error — torn tails are
//     silently dropped and the log stays appendable;
//   - a garbage SEALED segment either replays cleanly or fails with the
//     typed *CorruptError, never anything else;
//   - truncation is idempotent: reopening after a recovered open
//     replays exactly the surviving records plus any new appends.
func FuzzWALReplay(f *testing.F) {
	frame := func(r Record) []byte {
		b, err := encodeFrame(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := append([]byte(magic), frame(Record{Kind: KindSubmitted, Job: "job-000001", Data: []byte(`{"solver":"saim"}`)})...)
	valid = append(valid, frame(Record{Kind: KindFinished, Job: "job-000001", Data: []byte(`{"state":"done"}`)})...)

	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])      // torn final record
	f.Add(append(valid, 0, 0, 0, 0)) // zero-fill tail
	f.Add([]byte("not a wal file at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(magic)+frameHeaderSize+4] ^= 0x80 // payload bit flip -> crc mismatch
	f.Add(flipped)
	huge := append([]byte(magic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // 4 GiB claimed length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Position 1: the bytes are the newest segment. Open must
		// succeed (torn tails are dropped, not errors) and leave the
		// log appendable.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(dir, Config{Policy: SyncOff})
		if err != nil {
			t.Fatalf("Open on newest-segment garbage = %v, want nil", err)
		}
		n := len(recs)
		if err := l.Append(Record{Kind: KindStarted, Job: "fuzz"}); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, recs2, err := Open(dir, Config{Policy: SyncOff})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if len(recs2) != n+1 {
			t.Fatalf("reopen replayed %d records, want %d (truncation not idempotent)", len(recs2), n+1)
		}
		l2.Close()

		// Position 2: the bytes are a sealed segment followed by a
		// valid newest one. Clean replay or *CorruptError — nothing
		// else.
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, segName(2)), valid, 0o644); err != nil {
			t.Fatal(err)
		}
		l3, _, err := Open(dir2, Config{Policy: SyncOff})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Open on sealed-segment garbage = %v, want *CorruptError", err)
			}
			return
		}
		l3.Close()
	})
}
