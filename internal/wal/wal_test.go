package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/ising-machines/saim/internal/faultkit"
)

func openTest(t *testing.T, dir string, cfg Config) (*Log, []Record) {
	t.Helper()
	if cfg.Policy == SyncInterval {
		cfg.Policy = SyncOff // keep unit tests free of background fsync goroutines
	}
	l, recs, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs
}

func mustAppend(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openTest(t, dir, Config{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: KindSubmitted, Job: "job-000001", Data: []byte(`{"solver":"saim"}`)},
		{Kind: KindStarted, Job: "job-000001"},
		{Kind: KindCheckpoint, Job: "job-000001", Data: []byte(`{"cost":-15}`)},
		{Kind: KindFinished, Job: "job-000001", Data: []byte(`{"state":"done"}`)},
		{Kind: KindShutdown},
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, got := openTest(t, dir, Config{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Job != want[i].Job || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{SegmentBytes: 256})
	data := bytes.Repeat([]byte("x"), 64)
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, l, Record{Kind: KindCheckpoint, Job: fmt.Sprintf("job-%06d", i), Data: data})
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want >= 3 with a 256-byte cap", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, got := openTest(t, dir, Config{SegmentBytes: 256})
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("job-%06d", i); r.Job != want {
			t.Fatalf("record %d job = %q, want %q (order lost across rotation)", i, r.Job, want)
		}
	}
}

func TestTornTailTruncatedSilently(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"partial-header", []byte{0x05, 0x00}},
		{"partial-payload", []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}},
		{"zero-fill", make([]byte, 32)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openTest(t, dir, Config{})
			mustAppend(t, l,
				Record{Kind: KindSubmitted, Job: "job-000001", Data: []byte("a")},
				Record{Kind: KindStarted, Job: "job-000001"})
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			seg := filepath.Join(dir, segName(1))
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2, got := openTest(t, dir, Config{})
			if len(got) != 2 {
				t.Fatalf("replayed %d records, want 2 (torn tail dropped)", len(got))
			}
			// The tail must be physically gone: a fresh append then
			// reopen yields exactly 3 records.
			mustAppend(t, l2, Record{Kind: KindFinished, Job: "job-000001"})
			if err := l2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			_, got = openTest(t, dir, Config{})
			if len(got) != 3 || got[2].Kind != KindFinished {
				t.Fatalf("after truncate+append: %d records (last %+v), want 3 ending in Finished", len(got), got[len(got)-1])
			}
		})
	}
}

func TestCorruptSealedSegmentIsTypedError(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{SegmentBytes: 128})
	data := bytes.Repeat([]byte("y"), 64)
	for i := 0; i < 6; i++ {
		mustAppend(t, l, Record{Kind: KindCheckpoint, Job: "job-000001", Data: data})
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs at least 2 segments")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one payload bit in the FIRST (sealed) segment.
	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+frameHeaderSize+5] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Config{Policy: SyncOff})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Segment != seg || ce.Offset != headerSize {
		t.Fatalf("CorruptError = %+v, want segment %s offset %d", ce, seg, headerSize)
	}
}

func TestCompactDropsFinishedKeepsLive(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{SegmentBytes: 256})
	for i := 0; i < 10; i++ {
		job := fmt.Sprintf("job-%06d", i)
		mustAppend(t, l,
			Record{Kind: KindSubmitted, Job: job, Data: []byte("m")},
			Record{Kind: KindFinished, Job: job})
	}
	mustAppend(t, l, Record{Kind: KindSubmitted, Job: "job-live", Data: []byte("m")})
	before := l.Stats()
	if err := l.Compact(func(job string) bool { return job == "job-live" }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats()
	if after.Segments != 1 {
		t.Fatalf("Segments after compact = %d, want 1", after.Segments)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("Bytes after compact = %d, want < %d", after.Bytes, before.Bytes)
	}
	// The log must remain appendable and replayable after compaction.
	mustAppend(t, l, Record{Kind: KindStarted, Job: "job-live"})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, got := openTest(t, dir, Config{})
	if len(got) != 2 || got[0].Job != "job-live" || got[1].Kind != KindStarted {
		t.Fatalf("post-compact replay = %+v, want [submitted job-live, started job-live]", got)
	}
}

func TestSyncAlwaysHasNoLag(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, Record{Kind: KindSubmitted, Job: "j", Data: []byte("x")})
	if st := l.Stats(); st.Lag != 0 || st.Synced != 1 {
		t.Fatalf("SyncAlways stats = %+v, want Lag 0 Synced 1", st)
	}
}

func TestSyncOffReportsLag(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{Policy: SyncOff})
	defer l.Close()
	mustAppend(t, l, Record{Kind: KindSubmitted, Job: "j", Data: []byte("x")})
	if st := l.Stats(); st.Lag != 1 {
		t.Fatalf("SyncOff stats = %+v, want Lag 1", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st := l.Stats(); st.Lag != 0 {
		t.Fatalf("after Sync stats = %+v, want Lag 0", st)
	}
}

func TestAppendFaultInjection(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{})
	defer l.Close()
	boom := errors.New("disk on fire")
	faultkit.Set("wal.append", faultkit.Error(boom))
	t.Cleanup(func() { faultkit.Clear("wal.append") })
	if err := l.Append(Record{Kind: KindSubmitted, Job: "j"}); !errors.Is(err, boom) {
		t.Fatalf("Append under fault = %v, want %v", err, boom)
	}
	faultkit.Clear("wal.append")
	mustAppend(t, l, Record{Kind: KindSubmitted, Job: "j"})
	if st := l.Stats(); st.Appended != 1 {
		t.Fatalf("Appended = %d, want 1 (failed append must not count)", st.Appended)
	}
}

func TestSyncFaultInjection(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{Policy: SyncOff})
	defer l.Close()
	mustAppend(t, l, Record{Kind: KindSubmitted, Job: "j"})
	boom := errors.New("short fsync")
	faultkit.Set("wal.sync", faultkit.Error(boom))
	t.Cleanup(func() { faultkit.Clear("wal.sync") })
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync under fault = %v, want %v", err, boom)
	}
	if st := l.Stats(); st.Lag != 1 {
		t.Fatalf("Lag after failed sync = %d, want 1", st.Lag)
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSubmitted, Job: "j"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{})
	defer l.Close()
	if err := l.Append(Record{Kind: KindSubmitted, Job: "j", Data: make([]byte, MaxRecordBytes)}); err == nil {
		t.Fatal("oversize record accepted")
	}
	if err := l.Append(Record{Job: "j"}); err == nil {
		t.Fatal("zero-kind record accepted")
	}
}

func TestTornRotationHeaderRecovered(t *testing.T) {
	// Simulate a crash between creating a new segment and finishing its
	// magic: a newest segment with a short/garbage header is dropped and
	// rewritten, older sealed segments replay fine.
	dir := t.TempDir()
	l, _ := openTest(t, dir, Config{})
	mustAppend(t, l, Record{Kind: KindSubmitted, Job: "job-000001", Data: []byte("m")})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte("SAI"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := openTest(t, dir, Config{})
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	mustAppend(t, l2, Record{Kind: KindStarted, Job: "job-000001"})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got = openTest(t, dir, Config{})
	if len(got) != 2 {
		t.Fatalf("after header rewrite: replayed %d records, want 2", len(got))
	}
}
