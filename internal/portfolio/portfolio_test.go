package portfolio

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

func TestGenerateValidates(t *testing.T) {
	inst := Generate(20, 3, 1.0, 7)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if !inst.Sigma.IsSymmetric() {
		t.Fatal("covariance not symmetric")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(10, 2, 1, 3)
	b := Generate(10, 2, 1, 3)
	if a.Budget != b.Budget || a.Mu[5] != b.Mu[5] || a.Sigma.At(1, 2) != b.Sigma.At(1, 2) {
		t.Fatal("same seed, different instances")
	}
}

func TestCovariancePSDOnRandomVectors(t *testing.T) {
	// Factor-model covariance must satisfy vᵀΣv ≥ 0.
	inst := Generate(15, 3, 1, 9)
	src := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		v := make([]float64, inst.N)
		for i := range v {
			v[i] = src.Sym()
		}
		if q := inst.Sigma.QuadForm(v); q < -1e-9 {
			t.Fatalf("negative quadratic form %v", q)
		}
	}
}

func TestCostDecomposition(t *testing.T) {
	inst := Generate(6, 2, 2.0, 11)
	x := ising.Bits{1, 0, 1, 0, 0, 1}
	ret := inst.Mu[0] + inst.Mu[2] + inst.Mu[5]
	risk := 0.0
	sel := []int{0, 2, 5}
	for _, i := range sel {
		for _, j := range sel {
			risk += inst.Sigma.At(i, j)
		}
	}
	want := -ret + 2.0*risk
	if got := inst.Cost(x); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestRiskAversionReducesRisk(t *testing.T) {
	// Higher γ must yield an optimum with no more risk (variance of the
	// selected set) than lower γ.
	inst := Generate(14, 3, 0.0, 13)
	riskOf := func(x ising.Bits) float64 {
		return inst.Sigma.QuadForm(x.Float())
	}
	instLow := *inst
	instLow.Gamma = 0.1
	instHigh := *inst
	instHigh.Gamma = 5.0
	xLow, _, err := instLow.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	xHigh, _, err := instHigh.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if riskOf(xHigh) > riskOf(xLow)+1e-9 {
		t.Fatalf("γ=5 portfolio riskier (%v) than γ=0.1 (%v)", riskOf(xHigh), riskOf(xLow))
	}
}

// The normalized SAIM problem must rank configurations like the instance.
func TestToProblemOrdering(t *testing.T) {
	inst := Generate(10, 2, 1.5, 17)
	p := inst.ToProblem(constraint.Binary)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(23)
	for trial := 0; trial < 100; trial++ {
		x := make(ising.Bits, p.Ext.NTotal)
		y := make(ising.Bits, p.Ext.NTotal)
		for i := 0; i < inst.N; i++ {
			if src.Bool(0.5) {
				x[i] = 1
			}
			if src.Bool(0.5) {
				y[i] = 1
			}
		}
		cx, cy := inst.Cost(x[:inst.N]), inst.Cost(y[:inst.N])
		ex, ey := p.Objective.Energy(x), p.Objective.Energy(y)
		if (cx < cy && ex >= ey+1e-9) || (cx > cy && ex <= ey-1e-9) {
			t.Fatalf("ordering violated: cost %v vs %v, energy %v vs %v", cx, cy, ex, ey)
		}
	}
}

func TestSAIMSolvesPortfolio(t *testing.T) {
	inst := Generate(14, 3, 1.0, 29)
	_, opt, err := inst.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	p := inst.ToProblem(constraint.Binary)
	res, err := core.Solve(p, core.Options{
		Iterations: 300, SweepsPerRun: 300, Eta: 2, BetaMax: 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible portfolio sampled")
	}
	if !inst.Feasible(res.Best) {
		t.Fatal("reported best violates the budget")
	}
	// Costs can be near zero, so compare absolutely with a small margin
	// relative to the cost scale.
	if res.BestCost > opt+0.02*math.Abs(opt)+1e-6 {
		t.Fatalf("SAIM cost %v too far above optimum %v", res.BestCost, opt)
	}
}

func TestExhaustiveGuard(t *testing.T) {
	inst := Generate(26, 2, 1, 1)
	if _, _, err := inst.Exhaustive(); err == nil {
		t.Fatal("accepted N=26")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := Generate(5, 2, 1, 1)
	bad.Price[0] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero price")
	}
	bad2 := Generate(5, 2, 1, 1)
	bad2.Gamma = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepted negative gamma")
	}
}
