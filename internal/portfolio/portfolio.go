// Package portfolio models risk-averse asset selection, one of the
// resource-constrained applications the paper's introduction motivates
// ("capital budgeting, portfolio optimization"). Unlike QKP — whose pair
// values are bonuses — the portfolio objective carries a *positive*
// quadratic risk term, exercising the solver on the opposite coupling
// sign structure:
//
//	min  −μᵀx + γ·xᵀΣx
//	s.t. cᵀx ≤ B,  x ∈ {0,1}^N
//
// where μ are expected returns, Σ is a covariance matrix from a k-factor
// model (guaranteed PSD), γ the risk aversion, c asset prices and B the
// capital budget.
package portfolio

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Instance is one portfolio-selection instance.
type Instance struct {
	// Name identifies the instance.
	Name string
	// N is the number of assets.
	N int
	// Mu[i] is the expected return of asset i (per unit invested).
	Mu []float64
	// Sigma is the N×N return covariance (PSD by construction).
	Sigma *vecmat.Sym
	// Gamma is the risk-aversion coefficient.
	Gamma float64
	// Price[i] is the capital consumed by asset i.
	Price []float64
	// Budget is the capital limit.
	Budget float64
}

// Generate draws an instance from a k-factor covariance model: asset
// loadings L ~ N(0,1) on k common factors plus idiosyncratic variance, so
// Σ = L·Lᵀ + D is positive semi-definite.
func Generate(n, factors int, gamma float64, seed uint64) *Instance {
	if n <= 0 || factors <= 0 || gamma < 0 {
		panic("portfolio: invalid generator arguments")
	}
	src := rng.New(seed)
	inst := &Instance{
		Name:  fmt.Sprintf("port-%d-%d", n, factors),
		N:     n,
		Mu:    make([]float64, n),
		Sigma: vecmat.NewSym(n),
		Gamma: gamma,
		Price: make([]float64, n),
	}
	loadings := make([][]float64, n)
	for i := 0; i < n; i++ {
		loadings[i] = make([]float64, factors)
		for f := 0; f < factors; f++ {
			loadings[i][f] = src.NormFloat64() * 0.3
		}
		inst.Mu[i] = 0.05 + 0.15*src.Float64() // 5–20% expected return
		inst.Price[i] = float64(src.IntRange(10, 100))
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			cov := 0.0
			for f := 0; f < factors; f++ {
				cov += loadings[i][f] * loadings[j][f]
			}
			if i == j {
				cov += 0.02 + 0.08*src.Float64() // idiosyncratic variance
			}
			inst.Sigma.Set(i, j, cov)
		}
	}
	total := 0.0
	for _, p := range inst.Price {
		total += p
	}
	inst.Budget = math.Floor(total * (0.3 + 0.3*src.Float64()))
	return inst
}

// Validate checks structural invariants (dimensions, PSD diagonal).
func (p *Instance) Validate() error {
	if p.N <= 0 || len(p.Mu) != p.N || len(p.Price) != p.N || p.Sigma.N() != p.N {
		return fmt.Errorf("portfolio: inconsistent dimensions")
	}
	for i := 0; i < p.N; i++ {
		if p.Sigma.At(i, i) < 0 {
			return fmt.Errorf("portfolio: negative variance at asset %d", i)
		}
		if p.Price[i] <= 0 {
			return fmt.Errorf("portfolio: non-positive price at asset %d", i)
		}
	}
	if p.Gamma < 0 || p.Budget < 0 {
		return fmt.Errorf("portfolio: negative gamma or budget")
	}
	return nil
}

// Cost returns −μᵀx + γ·xᵀΣx, the minimization objective.
func (p *Instance) Cost(x ising.Bits) float64 {
	xf := x.Float()
	ret := 0.0
	for i, xi := range x {
		if xi != 0 {
			ret += p.Mu[i]
		}
	}
	return -ret + p.Gamma*p.Sigma.QuadForm(xf)
}

// Spend returns cᵀx.
func (p *Instance) Spend(x ising.Bits) float64 {
	s := 0.0
	for i, xi := range x {
		if xi != 0 {
			s += p.Price[i]
		}
	}
	return s
}

// Feasible reports cᵀx ≤ Budget.
func (p *Instance) Feasible(x ising.Bits) bool { return p.Spend(x) <= p.Budget+1e-9 }

// ToProblem converts the instance into the normalized SAIM form.
func (p *Instance) ToProblem(enc constraint.SlackEncoding) *core.Problem {
	sys := constraint.NewSystem(p.N)
	sys.Add(vecmat.Vec(p.Price), constraint.LE, p.Budget)
	ext := sys.Extend(enc)
	ext.Normalize()

	obj := ising.NewQUBO(ext.NTotal)
	for i := 0; i < p.N; i++ {
		// Diagonal covariance contributes linearly (x² = x).
		obj.AddLinear(i, -p.Mu[i]+p.Gamma*p.Sigma.At(i, i))
		for j := i + 1; j < p.N; j++ {
			if v := p.Sigma.At(i, j); v != 0 {
				obj.AddQuad(i, j, 2*p.Gamma*v)
			}
		}
	}
	obj.Normalize()

	return &core.Problem{
		Objective: obj,
		Ext:       ext,
		Cost:      p.Cost,
	}
}

// Exhaustive returns the optimal selection by enumeration (N ≤ 25).
func (p *Instance) Exhaustive() (ising.Bits, float64, error) {
	if p.N > 25 {
		return nil, 0, fmt.Errorf("portfolio: exhaustive limited to N ≤ 25, got %d", p.N)
	}
	best := math.Inf(1)
	var bestX ising.Bits
	x := make(ising.Bits, p.N)
	for mask := 0; mask < 1<<p.N; mask++ {
		for i := 0; i < p.N; i++ {
			x[i] = int8(mask >> i & 1)
		}
		if !p.Feasible(x) {
			continue
		}
		if c := p.Cost(x); c < best {
			best = c
			bestX = x.Clone()
		}
	}
	return bestX, best, nil
}
