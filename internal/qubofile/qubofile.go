// Package qubofile reads and writes QUBO models in the qbsolv text format,
// the de-facto interchange format of the Ising-machine ecosystem:
//
//	c lines starting with 'c' are comments
//	p qubo 0 maxNodes nNodes nCouplers
//	<i> <i> <diagonal weight>        (nNodes lines)
//	<i> <j> <coupler weight>         (nCouplers lines, i < j)
//
// Diagonal entries are linear coefficients (x_i² = x_i); couplers carry the
// full pair weight w·x_i·x_j. Writing a model and reading it back yields an
// energy-identical QUBO (the constant term, which the format cannot
// express, is carried in a comment and restored on read when present).
package qubofile

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/ising-machines/saim/internal/ising"
)

// Dense converts a dense QUBO into the sparse File form WriteSparse
// serializes: every diagonal entry (zeros included, the legacy shape)
// plus the nonzero couplers at full pair weight.
func Dense(q *ising.QUBO) *File {
	n := q.N()
	f := &File{N: n, Const: q.Const, Lin: make([]Entry, 0, n)}
	for i := 0; i < n; i++ {
		f.Lin = append(f.Lin, Entry{I: i, J: i, W: q.C[i]})
		row := q.Q.Row(i)
		for j := i + 1; j < n; j++ {
			if row[j] != 0 {
				// Q stores half the pair weight per symmetric entry.
				f.Quad = append(f.Quad, Entry{I: i, J: j, W: 2 * row[j]})
			}
		}
	}
	return f
}

// MaxReadNodes caps the node count Read accepts. The parsed QUBO is
// dense — O(maxNodes²) memory — so an unchecked header like
// "p qubo 0 99999999 0 0" would be a one-line memory bomb (and beyond
// the slice-length limit, an unrecoverable makeslice panic). The cap
// admits anything the dense pipeline can realistically hold (16384
// nodes is already a 2 GB matrix at parse time); instances beyond it
// are the decomposition layer's territory.
const MaxReadNodes = 1 << 14

// MaxSparseReadNodes caps the node count ReadSparse accepts. The sparse
// parse is O(nnz) in the file's actual entries, so the only per-node cost
// a hostile header can impose on downstream consumers is O(N) bookkeeping
// (variable handles, coefficient vectors); one million nodes bounds that
// at tens of megabytes while admitting every instance the decomposition
// path can realistically iterate on.
const MaxSparseReadNodes = 1 << 20

// Entry is one nonzero term of a parsed QUBO file: a linear coefficient
// when I == J, or a coupler carrying the full pair weight w·x_I·x_J when
// I < J.
type Entry struct {
	I, J int
	W    float64
}

// File is the sparse parse of a qbsolv-format QUBO: the declared node
// count, the restored constant, and the nonzero entries in file order.
// Duplicate entries are preserved (they accumulate, exactly as the dense
// Read accumulates them), so ΣLin + ΣQuad + Const reproduces the file's
// energy on any assignment without ever materializing an O(N²) matrix.
type File struct {
	N     int
	Const float64
	// Lin holds the diagonal (linear) entries, I == J.
	Lin []Entry
	// Quad holds the coupler entries, normalized to I < J, W the full
	// pair weight.
	Quad []Entry
}

// ReadSparse parses a qbsolv-format QUBO into nonzero triples in O(nnz)
// memory, admitting instances far beyond the dense Read cap (up to
// MaxSparseReadNodes nodes). It is the parse path of model.Load and the
// decomposition pipeline.
func ReadSparse(r io.Reader) (*File, error) {
	return readCapped(r, MaxSparseReadNodes, "sparse")
}

// Read parses a qbsolv-format QUBO into a dense ising.QUBO (capped at
// MaxReadNodes).
func Read(r io.Reader) (*ising.QUBO, error) {
	f, err := readCapped(r, MaxReadNodes, "dense")
	if err != nil {
		return nil, err
	}
	q := ising.NewQUBO(f.N)
	q.AddConst(f.Const)
	for _, e := range f.Lin {
		q.AddLinear(e.I, e.W)
	}
	for _, e := range f.Quad {
		q.AddQuad(e.I, e.J, e.W)
	}
	return q, nil
}

// readCapped is the single parser behind Read and ReadSparse; maxN guards
// the header's declared node count, kind names the format family in the
// error.
func readCapped(r io.Reader, maxN int, kind string) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var f *File
	var constant float64
	nodesLeft, couplersLeft := 0, 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "c"):
			fields := strings.Fields(text)
			if len(fields) == 3 && fields[1] == "constant" {
				v, err := strconv.ParseFloat(fields[2], 64)
				if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("qubofile: line %d: bad constant %q", line, fields[2])
				}
				constant = v
			}
		case strings.HasPrefix(text, "p"):
			if f != nil {
				return nil, fmt.Errorf("qubofile: line %d: duplicate problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 6 || fields[1] != "qubo" {
				return nil, fmt.Errorf("qubofile: line %d: malformed problem line %q", line, text)
			}
			maxNodes, err1 := strconv.Atoi(fields[3])
			nNodes, err2 := strconv.Atoi(fields[4])
			nCouplers, err3 := strconv.Atoi(fields[5])
			if err1 != nil || err2 != nil || err3 != nil || maxNodes <= 0 || nNodes < 0 || nCouplers < 0 {
				return nil, fmt.Errorf("qubofile: line %d: bad problem sizes %q", line, text)
			}
			if maxNodes > maxN {
				return nil, fmt.Errorf("qubofile: line %d: %d nodes exceeds the %s-format limit of %d", line, maxNodes, kind, maxN)
			}
			f = &File{N: maxNodes}
			nodesLeft, couplersLeft = nNodes, nCouplers
		default:
			if f == nil {
				return nil, fmt.Errorf("qubofile: line %d: data before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, fmt.Errorf("qubofile: line %d: want 'i j w', got %q", line, text)
			}
			i, err1 := strconv.Atoi(fields[0])
			j, err2 := strconv.Atoi(fields[1])
			w, err3 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || err3 != nil || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("qubofile: line %d: malformed entry %q", line, text)
			}
			if i < 0 || i >= f.N || j < 0 || j >= f.N {
				return nil, fmt.Errorf("qubofile: line %d: index out of range in %q", line, text)
			}
			if i == j {
				f.Lin = append(f.Lin, Entry{I: i, J: i, W: w})
				nodesLeft--
			} else {
				if i > j {
					i, j = j, i
				}
				f.Quad = append(f.Quad, Entry{I: i, J: j, W: w})
				couplersLeft--
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("qubofile: missing problem line")
	}
	if nodesLeft != 0 || couplersLeft != 0 {
		return nil, fmt.Errorf("qubofile: header promised %d more node and %d more coupler lines",
			nodesLeft, couplersLeft)
	}
	f.Const = constant
	return f, nil
}

// WriteSparse serializes a sparse File in qbsolv format without touching
// any dense structure. Entries are written in slice order; callers wanting
// a deterministic, round-trip-stable file (model.Save does) must supply
// merged, nonzero entries sorted by index with Quad normalized to I < J.
func WriteSparse(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "c generated by saim (qbsolv format)")
	if f.Const != 0 {
		fmt.Fprintf(bw, "c constant %s\n", strconv.FormatFloat(f.Const, 'g', -1, 64))
	}
	fmt.Fprintf(bw, "p qubo 0 %d %d %d\n", f.N, len(f.Lin), len(f.Quad))
	for _, e := range f.Lin {
		fmt.Fprintf(bw, "%d %d %s\n", e.I, e.I, strconv.FormatFloat(e.W, 'g', -1, 64))
	}
	for _, e := range f.Quad {
		fmt.Fprintf(bw, "%d %d %s\n", e.I, e.J, strconv.FormatFloat(e.W, 'g', -1, 64))
	}
	return bw.Flush()
}
