package qubofile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

func randomQUBO(src *rng.Source, n int) *ising.QUBO {
	q := ising.NewQUBO(n)
	for i := 0; i < n; i++ {
		if src.Bool(0.8) {
			q.AddLinear(i, src.Sym()*9)
		}
		for j := i + 1; j < n; j++ {
			if src.Bool(0.4) {
				q.AddQuad(i, j, src.Sym()*9)
			}
		}
	}
	if src.Bool(0.5) {
		q.AddConst(src.Sym() * 5)
	}
	return q
}

// Round trip must preserve the energy of every configuration.
func TestRoundTripEnergyEquivalence(t *testing.T) {
	src := rng.New(7)
	f := func(raw uint8) bool {
		n := int(raw%7) + 2
		q := randomQUBO(src, n)
		var buf bytes.Buffer
		if err := WriteSparse(&buf, Dense(q)); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N() != q.N() {
			return false
		}
		for mask := 0; mask < 1<<n; mask++ {
			x := make(ising.Bits, n)
			for i := 0; i < n; i++ {
				x[i] = int8(mask >> i & 1)
			}
			if math.Abs(got.Energy(x)-q.Energy(x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFormatShape(t *testing.T) {
	q := ising.NewQUBO(3)
	q.AddLinear(0, 1.5)
	q.AddQuad(0, 2, -2)
	q.AddConst(4)
	var buf bytes.Buffer
	if err := WriteSparse(&buf, Dense(q)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p qubo 0 3 3 1") {
		t.Fatalf("problem line missing/wrong:\n%s", out)
	}
	if !strings.Contains(out, "c constant 4") {
		t.Fatalf("constant comment missing:\n%s", out)
	}
	if !strings.Contains(out, "0 2 -2") {
		t.Fatalf("coupler line missing:\n%s", out)
	}
}

func TestReadHandComposed(t *testing.T) {
	in := `c a comment
p qubo 0 2 2 1
0 0 -1
1 1 2.5
0 1 3
`
	q, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 2 {
		t.Fatalf("N = %d", q.N())
	}
	// E(1,1) = -1 + 2.5 + 3 = 4.5
	if got := q.Energy(ising.Bits{1, 1}); got != 4.5 {
		t.Fatalf("E = %v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                 // empty
		"0 0 1\n",          // data before header
		"p qubo 0 x 1 0\n", // bad sizes
		"p qubo 0 2 1 0\n0 0 1\np qubo 0 2 1 0\n0 0 1\n", // duplicate header
		"p qubo 0 2 2 0\n0 0 1\n",                        // promised 2 nodes, got 1
		"p qubo 0 2 1 0\n5 5 1\n",                        // index out of range
		"p qubo 0 2 1 0\n0 0 z\n",                        // bad weight
		"p qubo 0 2 1 0\n0 0\n",                          // short line
		"p qubo 0 999999999 0 0\n",                       // memory-bomb header (> MaxReadNodes)
		"p qubo 0 2 2 0\n0 0 Inf\n1 1 NaN\n",             // non-finite weights
		"c constant Inf\np qubo 0 1 1 0\n0 0 1\n",        // non-finite constant
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("Read accepted %q", c)
		}
	}
}

func TestReadAllowsBlankLines(t *testing.T) {
	in := "p qubo 0 1 1 0\n\n0 0 2\n\n"
	q, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if q.Energy(ising.Bits{1}) != 2 {
		t.Fatal("blank-line parse wrong")
	}
}
