// Package maxcut models the maximum-cut problem, the canonical
// unconstrained Ising workload the paper's introduction cites: minimizing
// the Ising Hamiltonian over a graph with couplings J_ij = −W_ij is
// equivalent to maximizing the cut [12].
//
// The package provides weighted-graph representation, deterministic random
// generators (Erdős–Rényi and d-regular-ish ring+chords), the QUBO/Ising
// mappings, and exact/greedy references for tests.
package maxcut

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

// Edge is one weighted undirected edge.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph on vertices [0, N).
type Graph struct {
	N     int
	Edges []Edge
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("maxcut: NewGraph requires n > 0")
	}
	return &Graph{N: n}
}

// AddEdge appends an undirected edge; self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("maxcut: edge (%d,%d) out of range [0,%d)", u, v, g.N))
	}
	if u == v {
		panic("maxcut: self-loop")
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// CutValue returns the weight of edges crossing the bipartition encoded by
// x (x_i ∈ {0,1} selects the side of vertex i).
func (g *Graph) CutValue(x ising.Bits) float64 {
	if len(x) != g.N {
		panic("maxcut: CutValue dimension mismatch")
	}
	s := 0.0
	for _, e := range g.Edges {
		if x[e.U] != x[e.V] {
			s += e.W
		}
	}
	return s
}

// ToQUBO maps max-cut to minimization: for each edge (u,v,w) the cut gains
// w when x_u ≠ x_v, i.e. minimize −Σ w·(x_u + x_v − 2x_u x_v). The QUBO's
// energy equals −CutValue on every configuration.
func (g *Graph) ToQUBO() *ising.QUBO {
	q := ising.NewQUBO(g.N)
	for _, e := range g.Edges {
		q.AddLinear(e.U, -e.W)
		q.AddLinear(e.V, -e.W)
		q.AddQuad(e.U, e.V, 2*e.W)
	}
	return q
}

// ToIsing maps max-cut directly to spin form with J_uv = −w/… via the QUBO
// conversion; provided for callers that program Ising machines natively.
func (g *Graph) ToIsing() *ising.Model { return g.ToQUBO().ToIsing() }

// ErdosRenyi draws a G(n, p) random graph with uniform weights in
// [1, maxW], deterministically from seed.
func ErdosRenyi(n int, p float64, maxW int, seed uint64) *Graph {
	if p < 0 || p > 1 || maxW < 1 {
		panic("maxcut: invalid generator parameters")
	}
	src := rng.New(seed)
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Bool(p) {
				g.AddEdge(u, v, float64(src.IntRange(1, maxW)))
			}
		}
	}
	return g
}

// RingChords builds a connected ring of n vertices plus a chord from every
// k-th vertex to its antipode — a deterministic benchmark topology with a
// known dense structure.
func RingChords(n, k int, chordW float64) *Graph {
	if n < 3 || k < 1 {
		panic("maxcut: invalid ring parameters")
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
		if i%k == 0 {
			g.AddEdge(i, (i+n/2)%n, chordW)
		}
	}
	return g
}

// ExactMaxCut enumerates all bipartitions (n ≤ 25) and returns the best
// cut and its value. It is a test oracle.
func ExactMaxCut(g *Graph) (ising.Bits, float64, error) {
	if g.N > 25 {
		return nil, 0, fmt.Errorf("maxcut: exact cut limited to N ≤ 25, got %d", g.N)
	}
	best := math.Inf(-1)
	var bestX ising.Bits
	for mask := 0; mask < 1<<(g.N-1); mask++ { // fix vertex N-1 on side 0
		x := make(ising.Bits, g.N)
		for i := 0; i < g.N-1; i++ {
			x[i] = int8(mask >> i & 1)
		}
		if v := g.CutValue(x); v > best {
			best = v
			bestX = x.Clone()
		}
	}
	return bestX, best, nil
}

// GreedyCut builds a cut by local moves: starting from all-zero, repeatedly
// move the vertex with the largest cut gain until no move improves. The
// result is locally optimal (every single-vertex move is non-improving).
func GreedyCut(g *Graph) (ising.Bits, float64) {
	x := make(ising.Bits, g.N)
	// adjacency for gain computation
	adj := make([][]Edge, g.N)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, W: e.W})
	}
	gain := func(i int) float64 {
		d := 0.0
		for _, e := range adj[i] {
			if x[i] == x[e.V] {
				d += e.W // flipping i cuts this edge
			} else {
				d -= e.W
			}
		}
		return d
	}
	for {
		bestI, bestG := -1, 1e-12
		for i := 0; i < g.N; i++ {
			if d := gain(i); d > bestG {
				bestI, bestG = i, d
			}
		}
		if bestI < 0 {
			break
		}
		x[bestI] ^= 1
	}
	return x, g.CutValue(x)
}
