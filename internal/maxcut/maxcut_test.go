package maxcut

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

func TestCutValueTriangle(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if v := g.CutValue(ising.Bits{0, 1, 0}); v != 2 {
		t.Fatalf("cut = %v, want 2", v)
	}
	if v := g.CutValue(ising.Bits{0, 0, 0}); v != 0 {
		t.Fatalf("empty cut = %v", v)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 0, 1) },
		func() { g.AddEdge(0, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("AddEdge accepted bad edge")
				}
			}()
			fn()
		}()
	}
}

// The QUBO mapping invariant: energy == −cut on every configuration.
func TestToQUBOEnergyIsNegativeCut(t *testing.T) {
	src := rng.New(3)
	f := func(raw uint8) bool {
		n := int(raw%6) + 3
		g := ErdosRenyi(n, 0.6, 5, uint64(raw)+1)
		q := g.ToQUBO()
		for mask := 0; mask < 1<<n; mask++ {
			x := make(ising.Bits, n)
			for i := 0; i < n; i++ {
				x[i] = int8(mask >> i & 1)
			}
			if math.Abs(q.Energy(x)+g.CutValue(x)) > 1e-9 {
				return false
			}
		}
		_ = src
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIsingMappingAgrees(t *testing.T) {
	g := ErdosRenyi(8, 0.5, 3, 7)
	q := g.ToQUBO()
	m := g.ToIsing()
	for mask := 0; mask < 1<<8; mask++ {
		x := make(ising.Bits, 8)
		for i := 0; i < 8; i++ {
			x[i] = int8(mask >> i & 1)
		}
		if math.Abs(q.Energy(x)-m.Energy(x.Spins())) > 1e-9 {
			t.Fatalf("mismatch at %b", mask)
		}
	}
}

func TestExactMaxCutCompleteBipartite(t *testing.T) {
	// K_{2,3} has max cut = all 6 edges.
	g := NewGraph(5)
	for _, u := range []int{0, 1} {
		for _, v := range []int{2, 3, 4} {
			g.AddEdge(u, v, 1)
		}
	}
	_, best, err := ExactMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if best != 6 {
		t.Fatalf("max cut = %v, want 6", best)
	}
}

func TestExactMaxCutSizeGuard(t *testing.T) {
	if _, _, err := ExactMaxCut(NewGraph(26)); err == nil {
		t.Fatal("accepted N=26")
	}
}

func TestGreedyCutLocallyOptimal(t *testing.T) {
	g := ErdosRenyi(20, 0.4, 4, 11)
	x, v := GreedyCut(g)
	if v != g.CutValue(x) {
		t.Fatal("reported value inconsistent")
	}
	// No single flip improves.
	for i := 0; i < g.N; i++ {
		x[i] ^= 1
		if g.CutValue(x) > v+1e-9 {
			t.Fatalf("flip of %d improves greedy cut", i)
		}
		x[i] ^= 1
	}
}

func TestAnnealerReachesExactOptimum(t *testing.T) {
	g := ErdosRenyi(14, 0.5, 5, 13)
	_, want, err := ExactMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := anneal.MinimizeQUBO(g.ToQUBO(), anneal.Options{
		Runs: 30, SweepsPerRun: 300, BetaMax: 4, Seed: 1,
	})
	// βmax moderate: weights up to 5, ΔE scale ~ O(10).
	if got := g.CutValue(x); got < want-1e-9 {
		// One retry at colder schedule before failing: annealing is
		// stochastic but this size should be easy.
		x2, _ := anneal.MinimizeQUBO(g.ToQUBO(), anneal.Options{
			Runs: 100, SweepsPerRun: 600, BetaMax: 8, Seed: 2,
		})
		if got2 := g.CutValue(x2); got2 < want-1e-9 {
			t.Fatalf("annealer cut %v (then %v), optimum %v", got, got2, want)
		}
	}
}

func TestRingChords(t *testing.T) {
	g := RingChords(12, 3, 2)
	if g.N != 12 {
		t.Fatalf("N = %d", g.N)
	}
	// 12 ring edges + 4 chords.
	if len(g.Edges) != 16 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	if g.TotalWeight() != 12+4*2 {
		t.Fatalf("weight = %v", g.TotalWeight())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := ErdosRenyi(15, 0.5, 9, 42)
	b := ErdosRenyi(15, 0.5, 9, 42)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed, different graphs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed, different edges")
		}
	}
}
