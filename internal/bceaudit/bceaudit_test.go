package bceaudit

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	// internal/bceaudit/bceaudit_test.go → repo root.
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestBCEDriftAgainstAllowlists is the audit: every //saim:hotpath
// package's check_bce output must match its committed bce_allow.txt
// exactly. SAIM_BCE_UPDATE=1 regenerates the allowlists instead.
func TestBCEDriftAgainstAllowlists(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := HotpathPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no //saim:hotpath packages found — the scan is broken, not the tree")
	}
	update := os.Getenv("SAIM_BCE_UPDATE") != ""
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			got, err := Audit(root, pkg)
			if err != nil {
				t.Fatal(err)
			}
			if update {
				if err := WriteAllowlist(root, pkg, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s/%s (%d entries)", pkg, AllowlistName, len(got))
				return
			}
			allow, err := ReadAllowlist(root, pkg)
			if err != nil {
				t.Fatalf("missing allowlist (run SAIM_BCE_UPDATE=1 go test ./internal/bceaudit): %v", err)
			}
			for _, d := range Diff(allow, got) {
				t.Error(d)
			}
		})
	}
}

// TestDiffDetectsDrift pins the comparison logic in both directions
// without touching real kernels.
func TestDiffDetectsDrift(t *testing.T) {
	allow := []string{
		"# comment",
		"",
		"a.go f IsInBounds 2",
		"a.go g IsSliceInBounds 1",
	}
	if d := Diff(allow, []string{"a.go f IsInBounds 2", "a.go g IsSliceInBounds 1"}); len(d) != 0 {
		t.Fatalf("clean report drifted: %v", d)
	}
	// A new check and a count change are both drift.
	d := Diff(allow, []string{"a.go f IsInBounds 3", "a.go g IsSliceInBounds 1"})
	if len(d) != 2 {
		t.Fatalf("count bump: got %d drift lines %v, want new+stale pair", len(d), d)
	}
	// A vanished check is drift too (stale allowlist).
	d = Diff(allow, []string{"a.go f IsInBounds 2"})
	if len(d) != 1 {
		t.Fatalf("vanished check: got %v", d)
	}
}
