// Package bceaudit pins bounds-check elimination in the hot kernels.
//
// The Go compiler reports every bounds check it could not eliminate when
// a package builds with -gcflags=-d=ssa/check_bce. The audit builds each
// //saim:hotpath-bearing package that way, keeps only diagnostics inside
// hotpath functions, folds them into per-(file, function, kind) counts,
// and diffs the result against the package's committed bce_allow.txt.
// Any drift — a new bounds check the compiler stopped eliminating, or a
// stale allowlist after an improvement — fails the audit; regenerate the
// allowlists with SAIM_BCE_UPDATE=1 after verifying the change is
// intentional (BENCH_PR9-class wins live and die by these checks).
//
// The build cache replays compiler diagnostics on cache hits, so the
// audit stays cheap in repeated local runs.
package bceaudit

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// AllowlistName is the committed allowlist file in each audited package.
const AllowlistName = "bce_allow.txt"

const directive = "saim:hotpath"

// HotpathPackages returns module-relative directories (sorted) declaring
// at least one function whose doc comment carries the //saim:hotpath
// directive. A mere mention of the directive in prose or a string
// literal does not make a package hot.
func HotpathPackages(root string) ([]string, error) {
	candidate := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if candidate[dir] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if bytes.Contains(src, []byte("//"+directive)) {
			candidate[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var dirs []string
	for dir := range candidate {
		ranges, err := hotpathRanges(dir)
		if err != nil {
			return nil, err
		}
		if len(ranges) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, filepath.ToSlash(rel))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// funcRange is one hotpath function's file-local line span.
type funcRange struct {
	name       string
	start, end int
}

// hotpathRanges maps each file base name in dir to the line spans of its
// //saim:hotpath functions.
func hotpathRanges(dir string) (map[string][]funcRange, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string][]funcRange{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			hot := false
			for _, c := range fn.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), directive) {
					hot = true
					break
				}
			}
			if !hot {
				continue
			}
			out[name] = append(out[name], funcRange{
				name:  fn.Name.Name,
				start: fset.Position(fn.Pos()).Line,
				end:   fset.Position(fn.End()).Line,
			})
		}
	}
	return out, nil
}

var diagRe = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: Found (Is(?:Slice)?InBounds)$`)

// Audit compiles the package at the module-relative dir with
// ssa/check_bce and returns the normalized report: sorted
// "file function kind count" lines covering only //saim:hotpath
// functions.
func Audit(root, relDir string) ([]string, error) {
	ranges, err := hotpathRanges(filepath.Join(root, relDir))
	if err != nil {
		return nil, err
	}
	pattern := "./" + relDir
	cmd := exec.Command("go", "build", "-o", os.DevNull, "-gcflags="+pattern+"=-d=ssa/check_bce", pattern)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build %s: %v\n%s", relDir, err, stderr.String())
	}

	counts := map[string]int{}
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := diagRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		base := filepath.Base(m[1])
		var lineNo int
		fmt.Sscanf(m[2], "%d", &lineNo)
		for _, fr := range ranges[base] {
			if lineNo >= fr.start && lineNo <= fr.end {
				counts[fmt.Sprintf("%s %s %s", base, fr.name, m[3])]++
				break
			}
		}
	}
	report := make([]string, 0, len(counts))
	for k, n := range counts {
		report = append(report, fmt.Sprintf("%s %d", k, n))
	}
	sort.Strings(report)
	return report, nil
}

// Diff compares a report against allowlist content and returns
// human-readable drift lines (empty means the audit passes). Both sides
// are treated as exact sets: a vanished bounds check is drift too — it
// means the allowlist overstates the cost and must be regenerated so the
// improvement is pinned.
func Diff(allow, got []string) []string {
	a := map[string]bool{}
	for _, l := range allow {
		if l = strings.TrimSpace(l); l != "" && !strings.HasPrefix(l, "#") {
			a[l] = true
		}
	}
	g := map[string]bool{}
	for _, l := range got {
		g[l] = true
	}
	var drift []string
	for _, l := range got {
		if !a[l] {
			drift = append(drift, "new bounds check (not in allowlist): "+l)
		}
	}
	for l := range a {
		if !g[l] {
			drift = append(drift, "stale allowlist entry (check no longer emitted): "+l)
		}
	}
	sort.Strings(drift)
	return drift
}

// ReadAllowlist loads a package's committed allowlist. A missing file
// returns an error: every hotpath package must commit one, even if
// empty.
func ReadAllowlist(root, relDir string) ([]string, error) {
	src, err := os.ReadFile(filepath.Join(root, relDir, AllowlistName))
	if err != nil {
		return nil, err
	}
	return strings.Split(string(src), "\n"), nil
}

// WriteAllowlist regenerates a package's allowlist from a fresh report.
func WriteAllowlist(root, relDir string, report []string) error {
	var b strings.Builder
	b.WriteString("# Bounds checks the compiler still emits inside //saim:hotpath functions\n")
	b.WriteString("# of this package, as 'file function kind count'. Regenerate with\n")
	b.WriteString("#   SAIM_BCE_UPDATE=1 go test ./internal/bceaudit\n")
	b.WriteString("# after verifying any change is intentional; see internal/bceaudit.\n")
	for _, l := range report {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(root, relDir, AllowlistName), []byte(b.String()), 0o644)
}
