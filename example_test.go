package saim_test

import (
	"context"
	"fmt"

	saim "github.com/ising-machines/saim"
)

// The basic workflow: build a Model, pick a solver from the registry, read
// the assignment.
func ExampleSolveModel() {
	b := saim.NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8) // minimize −value
	b.ConstrainLE([]float64{2, 3, 4}, 5)        // weight budget
	model, err := b.Model()
	if err != nil {
		panic(err)
	}
	res, err := saim.SolveModel(context.Background(), "saim", model,
		saim.WithIterations(150), saim.WithSweepsPerRun(150),
		saim.WithEta(1), saim.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Assignment, res.Cost)
	// Output: [1 1 0] -11
}

// Every registered backend solves the same Model; the exact solver proves
// optimality on integer knapsack data.
func ExampleSolver() {
	b := saim.NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)
	b.ConstrainLE([]float64{2, 3, 4}, 5)
	model, _ := b.Model()

	exact, err := saim.Get("exact")
	if err != nil {
		panic(err)
	}
	res, err := exact.Solve(context.Background(), model)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Assignment, res.Cost, res.Optimal)
	// Output: [1 1 0] -11 true
}

// A cancellable solve streams progress and returns its best-so-far result
// when the context is cancelled.
func ExampleWithProgress() {
	b := saim.NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)
	b.ConstrainLE([]float64{2, 3, 4}, 5)
	model, _ := b.Model()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := saim.SolveModel(ctx, "saim", model,
		saim.WithIterations(1000000), // far more than needed …
		saim.WithSweepsPerRun(150), saim.WithEta(1), saim.WithSeed(1),
		saim.WithProgress(func(p saim.Progress) {
			if p.Iteration == 99 { // … so stop after 100 runs
				cancel()
			}
		}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Stopped, res.Assignment, res.Cost)
	// Output: cancelled [1 1 0] -11
}

// Evaluate checks feasibility and objective of any assignment in the
// caller's original units.
func ExampleModel_Evaluate() {
	b := saim.NewBuilder(2)
	b.Linear(0, -3).Linear(1, -4)
	b.ConstrainLE([]float64{1, 1}, 1)
	model, _ := b.Model()
	cost, feasible, _ := model.Evaluate([]int{1, 1})
	fmt.Println(cost, feasible)
	// Output: -7 false
}

// Unconstrained QUBOs (like max-cut) build the same way — with no
// constraints the model reports FormUnconstrained and the "saim" solver
// runs plain multi-run annealing on the p-bit machine.
func ExampleModel_unconstrained() {
	// Two-variable toy: E = 2x₀x₁ − x₀ − x₁, minima at (1,0) and (0,1).
	b := saim.NewBuilder(2)
	b.Linear(0, -1).Linear(1, -1)
	b.Quadratic(0, 1, 2)
	model, _ := b.Model()
	res, err := saim.SolveModel(context.Background(), "saim", model,
		saim.WithIterations(30), saim.WithSweepsPerRun(100), saim.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(model.Form(), res.Assignment[0]+res.Assignment[1], res.Cost)
	// Output: unconstrained 1 -1
}

// Higher-order problems keep product terms intact — here a quadratic
// constraint x₀·x₁ = 1 forces a pair to be selected together. Any
// ConstrainPolyEQ (or objective Term of degree ≥ 3) marks the model
// high-order.
func ExampleBuilder_ConstrainPolyEQ() {
	b := saim.NewBuilder(3)
	b.Linear(2, -1)
	b.ConstrainPolyEQ(
		saim.Monomial{W: 1, Vars: []int{0, 1}}, // x₀x₁ = 1
		saim.Monomial{W: -1},
	)
	model, err := b.Model()
	if err != nil {
		panic(err)
	}
	res, err := saim.SolveModel(context.Background(), "saim", model,
		saim.WithPenalty(2), saim.WithEta(0.5),
		saim.WithIterations(100), saim.WithSweepsPerRun(100), saim.WithSeed(2),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(model.Form(), res.Assignment[0], res.Assignment[1], res.Cost)
	// Output: high-order 1 1 -1
}

// The deprecated pre-registry wrappers still compile and run on top of the
// unified API.
func ExampleSolve() {
	b := saim.NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)
	b.ConstrainLE([]float64{2, 3, 4}, 5)
	problem, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := saim.Solve(problem, saim.Options{
		Iterations: 150, SweepsPerRun: 150, Eta: 1, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Assignment, res.Cost)
	// Output: [1 1 0] -11
}
