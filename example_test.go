package saim_test

import (
	"fmt"

	saim "github.com/ising-machines/saim"
)

// The basic workflow: build a knapsack, solve it with SAIM, read the
// assignment.
func ExampleSolve() {
	b := saim.NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8) // minimize −value
	b.ConstrainLE([]float64{2, 3, 4}, 5)        // weight budget
	problem, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := saim.Solve(problem, saim.Options{
		Iterations: 150, SweepsPerRun: 150, Eta: 1, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Assignment, res.Cost)
	// Output: [1 1 0] -11
}

// Evaluate checks feasibility and objective of any assignment in the
// caller's original units.
func ExampleProblem_Evaluate() {
	b := saim.NewBuilder(2)
	b.Linear(0, -3).Linear(1, -4)
	b.ConstrainLE([]float64{1, 1}, 1)
	problem, _ := b.Build()
	cost, feasible, _ := problem.Evaluate([]int{1, 1})
	fmt.Println(cost, feasible)
	// Output: -7 false
}

// Unconstrained QUBOs (like max-cut) run directly on the p-bit annealer.
func ExampleMinimize() {
	// Two-variable toy: E = 2x₀x₁ − x₀ − x₁, minima at (1,0) and (0,1).
	b := saim.NewBuilder(2)
	b.Linear(0, -1).Linear(1, -1)
	b.Quadratic(0, 1, 2)
	q, _ := b.BuildUnconstrained()
	x, e, _ := saim.Minimize(q, saim.Options{Iterations: 30, SweepsPerRun: 100, Seed: 1})
	fmt.Println(x[0]+x[1], e)
	// Output: 1 -1
}

// Higher-order problems keep product terms intact — here a quadratic
// constraint x₀·x₁ = 1 forces a pair to be selected together.
func ExampleSolveHighOrder() {
	objective := []saim.Monomial{{W: -1, Vars: []int{2}}}
	constraints := [][]saim.Monomial{
		{{W: 1, Vars: []int{0, 1}}, {W: -1}}, // x₀x₁ = 1
	}
	res, err := saim.SolveHighOrder(3, objective, constraints, saim.Options{
		Penalty: 2, Eta: 0.5, Iterations: 100, SweepsPerRun: 100, Seed: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Assignment[0], res.Assignment[1], res.Cost)
	// Output: 1 1 -1
}
