// Package saim is a self-adaptive Ising machine (SAIM) for constrained
// binary optimization, reproducing "Self-Adaptive Ising Machines for
// Constrained Optimization" (Delacour, DATE 2025; arXiv:2501.04971).
//
// # Background
//
// Ising machines natively minimize unconstrained quadratic energies. The
// standard way to impose constraints — adding a quadratic penalty
// P·‖g(x)‖² — requires a penalty weight above an instance-dependent
// critical value Pc, and finding that weight costs a tuning phase that
// dominates time-to-solution. SAIM instead keeps a small fixed P and adds
// a Lagrange relaxation λᵀg(x) whose multipliers adapt after every
// annealing run:
//
//	λ ← λ + η·g(x̄),
//
// a surrogate-subgradient ascent on the dual problem that reshapes the
// energy landscape until constrained optima become ground states.
//
// # The unified Model / Solver API
//
// One Builder produces a Model of any form — unconstrained QUBO, linearly
// constrained (the SAIM form), or high-order polynomial — and a registry
// of Solver backends runs it under a context:
//
//	b := saim.NewBuilder(3)
//	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)      // maximize 6x₀+5x₁+8x₂
//	b.ConstrainLE([]float64{2, 3, 4}, 5)             // weight limit
//	model, err := b.Model()
//	if err != nil { ... }
//	res, err := saim.SolveModel(ctx, "saim", model,
//		saim.WithIterations(200),
//		saim.WithProgress(func(p saim.Progress) { ... }),
//	)
//
// Registered backends (see Solvers): "saim" — the paper's Algorithm 1 (and
// the only backend accepting every model form); "penalty" — the classical
// fixed-P baseline; "pt" — parallel tempering (the PT-DA stand-in); "ga" —
// the Chu–Beasley genetic algorithm generalized to quadratic knapsacks;
// "greedy" — constructive density heuristics; "exact" — certified branch
// and bound; "decomp" — qbsolv-style subproblem decomposition that runs
// any of the other backends on extracted subproblems (WithSubproblemSize,
// WithInnerSolver, WithRounds, WithTabuTenure; see also the decompose
// package for instances beyond the dense-matrix limit); "race" — a
// meta-solver running several backends concurrently on the same model
// (WithRacers) and cancelling the rest when the first reaches
// WithTargetCost. Every backend honors context cancellation by returning
// its best-so-far result promptly (Result.Stopped == StopCancelled),
// enforces WithTimeLimit at the same cadence (Stopped == StopTimeLimit),
// streams Progress snapshots via WithProgress, and supports early
// stopping via WithTargetCost and WithPatience. Custom backends register
// with Register.
//
// Package service builds a concurrent solve service on this registry — a
// job manager with a bounded worker pool, per-job deadlines, result
// deduplication keyed by model and options fingerprints, and progress
// fan-out — and cmd/saimserve exposes it over HTTP/JSON with SSE progress
// streaming.
//
// The pre-registry entry points (Solve, SolvePenaltyMethod, Minimize,
// SolveHighOrder, SolveParallel) remain as thin deprecated wrappers over
// the unified API.
//
// # The declarative layer
//
// Package model is the recommended front door for application code: named,
// indexed variable families, algebraic expressions (Dot, Sum, Times),
// Minimize/Maximize, named constraints in all three senses (LE/EQ/GE), and
// name-aware solution extraction with a per-constraint slack report — all
// compiling losslessly onto this package's Builder. Package problems is a
// catalog of ready-made workloads (knapsack, max-cut, coloring,
// assignment, scheduling, portfolio, set cover) built on it, each pairing
// a declarative model with a typed decoder. WithInitial warm-starts the
// saim, penalty, pt, and ga backends from a known-good assignment.
//
// The module also ships the paper's full benchmark suites (quadratic and
// multidimensional knapsack problems), the penalty-method, parallel-
// tempering and genetic-algorithm baselines, exact branch-and-bound
// reference solvers, and a harness regenerating every table and figure of
// the paper's evaluation (cmd/saimexp).
//
// # Static analysis
//
// cmd/saimvet (built on internal/analysis) lints the module's own
// cross-cutting invariants at compile time: options-fingerprint
// completeness, deadline checks in solver work loops, allocation-free
// //saim:hotpath kernels, and seeded-randomness discipline. Run it
// standalone (go run ./cmd/saimvet ./...) or via go vet -vettool; see
// DESIGN.md §8.
package saim
