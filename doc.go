// Package saim is a self-adaptive Ising machine (SAIM) for constrained
// binary optimization, reproducing "Self-Adaptive Ising Machines for
// Constrained Optimization" (Delacour, DATE 2025; arXiv:2501.04971).
//
// # Background
//
// Ising machines natively minimize unconstrained quadratic energies. The
// standard way to impose constraints — adding a quadratic penalty
// P·‖g(x)‖² — requires a penalty weight above an instance-dependent
// critical value Pc, and finding that weight costs a tuning phase that
// dominates time-to-solution. SAIM instead keeps a small fixed P and adds
// a Lagrange relaxation λᵀg(x) whose multipliers adapt after every
// annealing run:
//
//	λ ← λ + η·g(x̄),
//
// a surrogate-subgradient ascent on the dual problem that reshapes the
// energy landscape until constrained optima become ground states.
//
// # Quick start
//
// Build a problem with Builder, then call Solve:
//
//	b := saim.NewBuilder(3)
//	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)      // maximize 6x₀+5x₁+8x₂
//	b.ConstrainLE([]float64{2, 3, 4}, 5)             // weight limit
//	p, err := b.Build()
//	if err != nil { ... }
//	res, err := saim.Solve(p, saim.Options{Iterations: 200})
//
// The module also ships the paper's full benchmark suites (quadratic and
// multidimensional knapsack problems), the penalty-method, parallel-
// tempering and genetic-algorithm baselines, exact branch-and-bound
// reference solvers, and a harness regenerating every table and figure of
// the paper's evaluation (cmd/saimexp).
package saim
