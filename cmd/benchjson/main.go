// Command benchjson parses `go test -bench` output into a compact JSON
// document so CI can publish machine-readable performance artifacts
// (BENCH_PR2.json and successors) and future PRs can diff throughput
// against the recorded trajectory.
//
// Usage:
//
//	go test -bench 'Sweep|AnnealRun' -benchmem -count=3 . | benchjson -o bench.json
//
// Repeated runs of the same benchmark (from -count) are aggregated: the
// minimum ns/op is reported as the headline number (least-noise estimate),
// alongside the mean and the per-op allocation columns when -benchmem was
// set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// Entry is the aggregated record emitted per benchmark name. The memory
// columns are pointers so that a measured 0 B/op / 0 allocs/op — the
// zero-allocation outcome the engine targets — stays distinguishable in
// the JSON from "-benchmem was not set".
type Entry struct {
	Runs        int      `json:"runs"`
	NsPerOpMin  float64  `json:"ns_per_op_min"`
	NsPerOpMean float64  `json:"ns_per_op_mean"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Source     string           `json:"source"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// parseLine extracts a benchmark sample from one output line, or reports
// ok=false for non-benchmark lines.
func parseLine(line string) (name string, s sample, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", sample{}, false
	}
	fields := strings.Fields(line)
	// Name, iteration count, value "ns/op" [, bytes "B/op", allocs "allocs/op"].
	if len(fields) < 4 || fields[3] != "ns/op" {
		return "", sample{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return "", sample{}, false
	}
	// Strip the parallelism suffix goimports-style names carry (-8 etc.).
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	s = sample{nsPerOp: ns}
	if len(fields) >= 8 && fields[5] == "B/op" && fields[7] == "allocs/op" {
		if b, err := strconv.ParseFloat(fields[4], 64); err == nil {
			s.bytesPerOp = b
			if a, err := strconv.ParseFloat(fields[6], 64); err == nil {
				s.allocsPerOp = a
				s.hasMem = true
			}
		}
	}
	return name, s, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Source: "go test -bench", Benchmarks: map[string]Entry{}}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if name, s, ok := parseLine(line); ok {
				samples[name] = append(samples[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		e := Entry{Runs: len(ss), NsPerOpMin: ss[0].nsPerOp}
		sum := 0.0
		for _, s := range ss {
			sum += s.nsPerOp
			if s.nsPerOp < e.NsPerOpMin {
				e.NsPerOpMin = s.nsPerOp
			}
			if s.hasMem {
				// Memory columns are deterministic per benchmark; keep the last.
				b, a := s.bytesPerOp, s.allocsPerOp
				e.BytesPerOp, e.AllocsPerOp = &b, &a
			}
		}
		e.NsPerOpMean = sum / float64(len(ss))
		doc.Benchmarks[name] = e
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}
