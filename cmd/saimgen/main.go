// Command saimgen generates benchmark instances in the library's text
// formats.
//
// Usage:
//
//	saimgen -family qkp -n 100 -density 0.5 -id 1 -seed 42 -o 100-50-1.qkp
//	saimgen -family mkp -n 100 -m 5 -tightness 0.5 -id 1 -o 100-5-1.mkp
//	saimgen -family qubo -n 64 -density 0.1 -o cut-64.qubo
//
// The qubo family draws a random max-cut graph through the public problems
// catalog and writes its declarative model as a portable qbsolv-format
// QUBO via model.Save; solve it with `saimsolve -load file.qubo` or any
// other qbsolv-compatible tool. With -o "-" (the default) the instance is
// written to stdout. Seeds default to a deterministic hash of the
// parameters so regenerating the same instance id yields identical data.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/problems"
)

func main() {
	var (
		family    = flag.String("family", "qkp", "instance family: qkp, mkp, or qubo (random max-cut energy)")
		n         = flag.Int("n", 100, "number of items / vertices")
		m         = flag.Int("m", 5, "number of constraints (mkp only)")
		density   = flag.Float64("density", 0.5, "pair-value / edge density in (0,1] (qkp and qubo)")
		tightness = flag.Float64("tightness", 0.5, "capacity tightness in (0,1) (mkp only)")
		id        = flag.Int("id", 1, "instance id (names the instance)")
		seed      = flag.Uint64("seed", 0, "generator seed (0 = derive from parameters)")
		out       = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	s := *seed
	if s == 0 {
		s = deriveSeed(*family, *n, *m, *id, *density, *tightness)
	}

	switch *family {
	case "qkp":
		inst := qkp.Generate(*n, *density, *id, s)
		if err := inst.Write(w); err != nil {
			fatal(err)
		}
	case "mkp":
		inst := mkp.Generate(*n, *m, *tightness, *id, s)
		if err := inst.Write(w); err != nil {
			fatal(err)
		}
	case "qubo":
		// A random max-cut energy as a portable QUBO. The file format
		// holds minimization energies, so the cut −w·(x_u + x_v − 2x_ux_v)
		// enters negated; the file's minimum is the maximum cut.
		g := problems.RandomGraph(*n, *density, 10, s)
		qm := model.New()
		x := qm.Binary("x", g.N)
		terms := make([]model.Expr, 0, 3*len(g.Edges))
		for _, e := range g.Edges {
			terms = append(terms,
				x[e.U].Mul(-e.W), x[e.V].Mul(-e.W), x[e.U].Times(x[e.V]).Mul(2*e.W))
		}
		qm.Minimize(model.Sum(terms...))
		if err := model.Save(w, qm); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown family %q (want qkp, mkp, or qubo)", *family))
	}
}

func deriveSeed(family string, n, m, id int, density, tightness float64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, b := range []byte(family) {
		mix(uint64(b))
	}
	mix(uint64(n))
	mix(uint64(m))
	mix(uint64(id))
	mix(uint64(density * 1000))
	mix(uint64(tightness * 1000))
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saimgen:", err)
	os.Exit(1)
}
