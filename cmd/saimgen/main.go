// Command saimgen generates benchmark instances in the library's text
// formats.
//
// Usage:
//
//	saimgen -family qkp -n 100 -density 0.5 -id 1 -seed 42 -o 100-50-1.qkp
//	saimgen -family mkp -n 100 -m 5 -tightness 0.5 -id 1 -o 100-5-1.mkp
//
// With -o "-" (the default) the instance is written to stdout. Seeds
// default to a deterministic hash of the parameters so regenerating the
// same instance id yields identical data.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
)

func main() {
	var (
		family    = flag.String("family", "qkp", "instance family: qkp or mkp")
		n         = flag.Int("n", 100, "number of items")
		m         = flag.Int("m", 5, "number of constraints (mkp only)")
		density   = flag.Float64("density", 0.5, "pair-value density in (0,1] (qkp only)")
		tightness = flag.Float64("tightness", 0.5, "capacity tightness in (0,1) (mkp only)")
		id        = flag.Int("id", 1, "instance id (names the instance)")
		seed      = flag.Uint64("seed", 0, "generator seed (0 = derive from parameters)")
		out       = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	s := *seed
	if s == 0 {
		s = deriveSeed(*family, *n, *m, *id, *density, *tightness)
	}

	switch *family {
	case "qkp":
		inst := qkp.Generate(*n, *density, *id, s)
		if err := inst.Write(w); err != nil {
			fatal(err)
		}
	case "mkp":
		inst := mkp.Generate(*n, *m, *tightness, *id, s)
		if err := inst.Write(w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown family %q (want qkp or mkp)", *family))
	}
}

func deriveSeed(family string, n, m, id int, density, tightness float64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, b := range []byte(family) {
		mix(uint64(b))
	}
	mix(uint64(n))
	mix(uint64(m))
	mix(uint64(id))
	mix(uint64(density * 1000))
	mix(uint64(tightness * 1000))
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saimgen:", err)
	os.Exit(1)
}
