// Command saimexp regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	saimexp -exp table2                 # one experiment, reduced preset
//	saimexp -exp all -preset smoke      # everything, tiny scale
//	saimexp -exp fig3 -trace fig3.csv   # also dump the trace series
//	saimexp -exp table5 -preset paper   # full paper scale (hours)
//
// Experiments: table1, table2, table3, table4, table5, fig3, fig4, fig5,
// the ablations (abl-eta, abl-alpha, abl-encoding, abl-projection,
// abl-capacity), or all. Presets: smoke (seconds), reduced (default,
// minutes), paper (the published sizes and budgets; many hours on one
// core). "all" runs the tables and figures; ablations run only when named
// explicitly or via -exp ablations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/ising-machines/saim/internal/experiments"
	"github.com/ising-machines/saim/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1..table5, fig3..fig5, abl-*, all, or ablations")
		preset  = flag.String("preset", "reduced", "smoke, reduced, or paper")
		seed    = flag.Uint64("seed", 0, "seed offset for all instances and solvers")
		trace   = flag.String("trace", "", "CSV file for fig3/fig5 trace series")
		csvOut  = flag.String("csv", "", "also render tables as CSV into this directory")
		verbose = flag.Bool("v", false, "per-instance progress on stderr")
	)
	flag.Parse()

	p, err := experiments.ParsePreset(*preset)
	if err != nil {
		fatal(err)
	}
	// Ctrl-C cancels the solver loops at their next annealing-run
	// boundary; partially completed experiments still render.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := experiments.Config{Preset: p, Seed: *seed, Verbose: *verbose, Ctx: ctx}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	ran := 0

	runTable := func(name string, f func() (fmt.Stringer, error)) {
		if !all && !wanted[name] {
			return
		}
		ran++
		start := time.Now()
		tb, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(tb.String())
		fmt.Printf("(%s regenerated in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvOut != "" {
			writeCSV(*csvOut, name, tb)
		}
	}

	runTable("table1", func() (fmt.Stringer, error) { return experiments.TableI(cfg), nil })
	runTable("table2", func() (fmt.Stringer, error) {
		r, err := experiments.Table2(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	})
	runTable("table3", func() (fmt.Stringer, error) {
		r, err := experiments.Table3(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	})
	runTable("table4", func() (fmt.Stringer, error) {
		r, err := experiments.Table4(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	})
	runTable("table5", func() (fmt.Stringer, error) {
		r, err := experiments.Table5(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	})

	runTraceFig := func(name string, f func(experiments.Config) (*experiments.TraceResult, error)) {
		if !all && !wanted[name] {
			return
		}
		ran++
		start := time.Now()
		r, err := f(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(r.Summary.String())
		fmt.Printf("(%s regenerated in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *trace != "" {
			out, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			if err := r.WriteCSV(out); err != nil {
				fatal(err)
			}
			if err := out.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s\n\n", *trace)
		}
	}
	runTraceFig("fig3", experiments.Fig3)

	if all || wanted["fig4"] {
		ran++
		start := time.Now()
		r, err := experiments.Fig4(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Accuracy.String())
		fmt.Println(r.Budget.String())
		fmt.Printf("(fig4 regenerated in %s)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvOut != "" {
			writeCSV(*csvOut, "fig4a", r.Accuracy)
			writeCSV(*csvOut, "fig4b", r.Budget)
		}
	}

	runTraceFig("fig5", experiments.Fig5)

	ablations := wanted["ablations"]
	runAblation := func(name string, f func(experiments.Config) (*experiments.AblationResult, error)) {
		if !ablations && !wanted[name] {
			return
		}
		ran++
		start := time.Now()
		r, err := f(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(r.Table.String())
		fmt.Printf("(%s regenerated in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvOut != "" {
			writeCSV(*csvOut, name, r.Table)
		}
	}
	runAblation("abl-eta", experiments.AblationEta)
	runAblation("abl-alpha", experiments.AblationAlpha)
	runAblation("abl-encoding", experiments.AblationEncoding)
	runAblation("abl-projection", experiments.AblationProjection)
	runAblation("abl-capacity", experiments.AblationCapacity)

	if ran == 0 {
		fatal(fmt.Errorf("no experiment matched %q", *exp))
	}
}

func writeCSV(dir, name string, tb fmt.Stringer) {
	ct, ok := tb.(*report.Table)
	if !ok {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(fmt.Sprintf("%s/%s.csv", dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := ct.RenderCSV(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saimexp:", err)
	os.Exit(1)
}
