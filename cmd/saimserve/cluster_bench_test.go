package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterThroughputBenchPR8 measures aggregate submit→result
// throughput at 1, 2, and 3 worker processes and writes BENCH_PR8.json
// to the path named by SAIMSERVE_BENCH_PR8 (skipped when unset — this
// is a minutes-long load test, not a unit test).
//
// The methodology is weak scaling: every process brings its own pair of
// closed-loop clients (submit → poll to completion → 150ms think time),
// so offered load grows with the deployment, the way a sharded serving
// tier is actually grown. Jobs are dedup-eligible, so every submission
// rides the full cluster data path — fingerprint routing to the ring
// owner, forwarded submits, relayed result polls. The acceptance bar is
// that 3 processes clear ≥ 2.5× the single process measured in the same
// run: the cluster plane (heartbeats, routing hops, relays, ring
// bookkeeping) must not eat the capacity the extra nodes add. Work
// stealing is disabled in the children — it is a load-imbalance rescue
// with its own tests, and its probe round-trips are latency noise at
// this job granularity.
func TestClusterThroughputBenchPR8(t *testing.T) {
	out := os.Getenv("SAIMSERVE_BENCH_PR8")
	if out == "" {
		t.Skip("set SAIMSERVE_BENCH_PR8=<output path> to run the cluster throughput bench")
	}
	if testing.Short() {
		t.Skip("cluster throughput bench skipped in -short mode")
	}

	type run struct {
		Nodes      int     `json:"nodes"`
		Completed  int64   `json:"completed"`
		Errors     int64   `json:"errors"`
		Seconds    float64 `json:"seconds"`
		JobsPerSec float64 `json:"jobs_per_sec"`
	}
	runs := make(map[string]run, 3)
	tput := make(map[int]float64, 3)
	for _, n := range []int{1, 2, 3} {
		r := measureClusterThroughput(t, n)
		runs[fmt.Sprintf("ClusterThroughput%dNode", n)] = r
		tput[n] = r.JobsPerSec
		t.Logf("nodes=%d completed=%d errors=%d throughput=%.1f jobs/s", n, r.Completed, r.Errors, r.JobsPerSec)
	}
	ratio2 := tput[2] / tput[1]
	ratio3 := tput[3] / tput[1]
	if !(ratio3 >= 2.5) { // NaN-safe: 0/0 must fail, not skate through
		t.Errorf("3-node aggregate throughput only %.2fx single-node, want >= 2.5x", ratio3)
	}

	report := map[string]any{
		"pr":          8,
		"description": "Cluster plane: coordinator/worker saimserve with fingerprint-sharded dedup and work-stealing",
		"acceptance": map[string]any{
			"target":                   "3-process aggregate submit->result throughput >= 2.5x single-node, same run",
			"single_node_jobs_per_sec": round2(tput[1]),
			"two_node_jobs_per_sec":    round2(tput[2]),
			"three_node_jobs_per_sec":  round2(tput[3]),
			"two_node_speedup":         round2(ratio2),
			"three_node_speedup":       round2(ratio3),
		},
		"source":     "go test -run TestClusterThroughputBenchPR8 (weak scaling: 2 closed-loop clients per process with 150ms think time, dedup-eligible jobs routed to their fingerprint's ring owner)",
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"cpu":        cpuModel(),
		"benchmarks": runs,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (2-node %.2fx, 3-node %.2fx)", out, ratio2, ratio3)
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// cpuModel best-efforts the CPU model string for the report.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return runtime.GOARCH
}

// measureClusterThroughput boots an n-process cluster (workers=1 each),
// drives it with two closed-loop clients per node for a fixed window
// after warmup, and returns the completion rate.
func measureClusterThroughput(t *testing.T, n int) (r struct {
	Nodes      int     `json:"nodes"`
	Completed  int64   `json:"completed"`
	Errors     int64   `json:"errors"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}) {
	t.Helper()
	ports := freePorts(t, n)
	var peerList []string
	for i := 0; i < n; i++ {
		peerList = append(peerList, fmt.Sprintf("b%d=127.0.0.1:%d", i+1, ports[i]))
	}
	peers := strings.Join(peerList, ",")
	urls := make([]string, 0, n)
	procs := make([]*os.Process, 0, n)
	for i := 0; i < n; i++ {
		cmd, url := startChild(t,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", fmt.Sprintf("b%d", i+1),
			"-peers", peers,
			"-heartbeat", "500ms",
			"-steal-interval", "-1ms", // capacity bench, not a steal bench
			"-workers", "1",
			"-queue", "16",
		)
		urls = append(urls, url)
		procs = append(procs, cmd.Process)
	}
	defer func() {
		for _, p := range procs {
			_ = p.Kill()
			_, _ = p.Wait()
		}
	}()

	const (
		warmup  = 2 * time.Second
		measure = 8 * time.Second
		think   = 150 * time.Millisecond
	)
	var completed, failed atomic.Int64
	var seed atomic.Int64
	stop := time.Now().Add(warmup + measure)
	counting := time.Now().Add(warmup)

	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(base string) {
				defer wg.Done()
				client := &http.Client{Timeout: 10 * time.Second}
				for time.Now().Before(stop) {
					s := seed.Add(1)
					// Distinct seed → distinct dedup key; rotating model
					// variants spread fingerprints across the ring so the
					// submission path exercises real cross-node routing.
					body := fmt.Sprintf(`{"solver":"saim","options":{"seed":%d,"iterations":2000,"sweeps_per_run":50},"model":%s}`,
						s, knapVariant(int(s%48)))
					resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
					if err != nil {
						failed.Add(1)
						time.Sleep(think)
						continue
					}
					var env jobEnvelope
					err = json.NewDecoder(resp.Body).Decode(&env)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusAccepted {
						failed.Add(1)
						time.Sleep(think)
						continue
					}
					for time.Now().Before(stop) {
						rr, err := client.Get(base + "/v1/jobs/" + env.ID + "/result")
						if err != nil {
							failed.Add(1)
							break
						}
						done := rr.StatusCode == http.StatusOK
						var res wireResult
						if done {
							if err := json.NewDecoder(rr.Body).Decode(&res); err != nil || res.Stopped == "" {
								done = false // terminal error body, not a result
								rr.Body.Close()
								failed.Add(1)
								break
							}
						}
						rr.Body.Close()
						if done {
							if time.Now().After(counting) {
								completed.Add(1)
							}
							break
						}
						// Transient relay errors (502/503) and still-running
						// (409) both land here: poll again shortly.
						time.Sleep(10 * time.Millisecond)
					}
					time.Sleep(think)
				}
			}(urls[node])
		}
	}
	wg.Wait()

	r.Nodes = n
	r.Completed = completed.Load()
	r.Errors = failed.Load()
	r.Seconds = measure.Seconds()
	r.JobsPerSec = float64(r.Completed) / r.Seconds
	return r
}
