// Command saimserve exposes the saim solver registry as a concurrent
// HTTP/JSON service: submit declarative models (the JSON wire format of
// package model), stream progress over SSE, fetch results, cancel jobs,
// and batch submissions — all running on the bounded worker pool of
// package service with per-job deadlines, request deduplication, and a
// result cache.
//
// Quickstart:
//
//	saimserve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	  "solver": "saim",
//	  "options": {"seed": 1, "iterations": 200, "time_limit_ms": 5000},
//	  "model": {
//	    "families": [{"name": "take", "n": 3}],
//	    "maximize": true,
//	    "objective": {"lin": [{"v":0,"w":6},{"v":1,"w":5},{"v":2,"w":8}]},
//	    "constraints": [{"name":"cap","sense":"<=",
//	      "expr":{"lin":[{"v":0,"w":2},{"v":1,"w":3},{"v":2,"w":4}]},"bound":5}]
//	  }
//	}'
//	curl -N localhost:8080/v1/jobs/job-000001/events   # SSE progress → result
//	curl -s localhost:8080/v1/jobs/job-000001/result
//
// On SIGTERM/SIGINT the server drains gracefully: intake stops, queued
// and running solves finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ising-machines/saim/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solve concurrency (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "queued-job bound before submissions get 503")
		cache   = flag.Int("cache", 256, "completed-result cache size")
		limit   = flag.Duration("limit", time.Minute, "default per-job time limit when a request carries none (0 = unlimited)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	mgr := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		DefaultTimeLimit: *limit,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: newServer(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("saimserve listening on %s (workers=%d queue=%d)", *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("saimserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("saimserve draining (budget %v)...", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("saimserve: http shutdown: %v", err)
	}
	if err := mgr.Close(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("saimserve: drain budget spent; running jobs force-cancelled (best-so-far results kept)")
		} else {
			log.Printf("saimserve: drain: %v", err)
		}
	}
	fmt.Println("saimserve: drained")
}
