// Command saimserve exposes the saim solver registry as a concurrent
// HTTP/JSON service: submit declarative models (the JSON wire format of
// package model), stream progress over SSE, fetch results, cancel jobs,
// and batch submissions — all running on the bounded worker pool of
// package service with per-job deadlines, request deduplication, and a
// result cache.
//
// Quickstart:
//
//	saimserve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	  "solver": "saim",
//	  "options": {"seed": 1, "iterations": 200, "time_limit_ms": 5000},
//	  "model": {
//	    "families": [{"name": "take", "n": 3}],
//	    "maximize": true,
//	    "objective": {"lin": [{"v":0,"w":6},{"v":1,"w":5},{"v":2,"w":8}]},
//	    "constraints": [{"name":"cap","sense":"<=",
//	      "expr":{"lin":[{"v":0,"w":2},{"v":1,"w":3},{"v":2,"w":4}]},"bound":5}]
//	  }
//	}'
//	curl -N localhost:8080/v1/jobs/job-000001/events   # SSE progress → result
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/statusz                     # queue/worker/WAL stats
//
// With -data the job plane is durable: accepted jobs are journaled to a
// write-ahead log in that directory (fsync policy per -fsync), and a
// restart re-queues every unfinished job warm-started from its last
// checkpoint, keeping job ids and dedup keys across the crash:
//
//	saimserve -addr :8080 -data /var/lib/saimserve &
//
// A panicking solver fails only its own job; after -retries attempts the
// request's dedup key is quarantined and identical submissions fail fast.
//
// On SIGTERM/SIGINT the server drains gracefully: intake stops, queued
// and running solves finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ising-machines/saim/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("saimserve: %v", err)
	}
}

// parseFsync maps the -fsync flag onto a journal sync policy.
func parseFsync(s string) (service.SyncPolicy, error) {
	switch s {
	case "always":
		return service.SyncAlways, nil
	case "interval":
		return service.SyncInterval, nil
	case "off":
		return service.SyncOff, nil
	default:
		return 0, fmt.Errorf("invalid -fsync %q (want always, interval, or off)", s)
	}
}

// run is the whole server lifecycle, factored out of main so tests can
// exec it as a child process and crash it. The resolved listen address
// is logged as "listening on <addr>" once the socket is bound — with
// -addr :0 that line is how a parent process learns the real port.
func run(args []string) error {
	fs := flag.NewFlagSet("saimserve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "solve concurrency (0 = GOMAXPROCS)")
		queue   = fs.Int("queue", 64, "queued-job bound before submissions get 503")
		cache   = fs.Int("cache", 256, "completed-result cache size")
		limit   = fs.Duration("limit", time.Minute, "default per-job time limit when a request carries none (0 = unlimited)")
		drain   = fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
		data    = fs.String("data", "", "durable journal directory; non-finished jobs are re-queued on restart (empty = in-memory only)")
		fsync   = fs.String("fsync", "interval", "journal fsync policy with -data: always, interval, or off")
		retries = fs.Int("retries", 2, "solve retries after a solver panic before the job's key is quarantined")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		DefaultTimeLimit: *limit,
	}
	if *retries <= 0 {
		cfg.MaxRetries = -1 // flag 0 means "never retry"; Config 0 means default
	} else {
		cfg.MaxRetries = *retries
	}

	var mgr *service.Manager
	if *data != "" {
		policy, err := parseFsync(*fsync)
		if err != nil {
			return err
		}
		cfg.Dir, cfg.Fsync = *data, policy
		mgr, err = service.Open(cfg)
		if err != nil {
			return err
		}
		if recovered := len(mgr.Jobs()); recovered > 0 {
			log.Printf("saimserve recovered %d unfinished job(s) from %s", recovered, *data)
		}
	} else {
		mgr = service.New(cfg)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = mgr.Close(context.Background())
		return err
	}
	httpSrv := &http.Server{Handler: newServer(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("saimserve listening on %s (workers=%d queue=%d durable=%v)", ln.Addr(), *workers, *queue, *data != "")
		errCh <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("saimserve draining (budget %v)...", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("saimserve: http shutdown: %v", err)
	}
	if err := mgr.Close(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("saimserve: drain budget spent; running jobs force-cancelled (best-so-far results kept)")
		} else {
			log.Printf("saimserve: drain: %v", err)
		}
	}
	fmt.Println("saimserve: drained")
	return nil
}
