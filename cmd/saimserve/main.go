// Command saimserve exposes the saim solver registry as a concurrent
// HTTP/JSON service: submit declarative models (the JSON wire format of
// package model), stream progress over SSE, fetch results, cancel jobs,
// and batch submissions — all running on the bounded worker pool of
// package service with per-job deadlines, request deduplication, and a
// result cache.
//
// Quickstart:
//
//	saimserve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	  "solver": "saim",
//	  "options": {"seed": 1, "iterations": 200, "time_limit_ms": 5000},
//	  "model": {
//	    "families": [{"name": "take", "n": 3}],
//	    "maximize": true,
//	    "objective": {"lin": [{"v":0,"w":6},{"v":1,"w":5},{"v":2,"w":8}]},
//	    "constraints": [{"name":"cap","sense":"<=",
//	      "expr":{"lin":[{"v":0,"w":2},{"v":1,"w":3},{"v":2,"w":4}]},"bound":5}]
//	  }
//	}'
//	curl -N localhost:8080/v1/jobs/job-000001/events   # SSE progress → result
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/statusz                     # queue/worker/WAL stats
//
// With -data the job plane is durable: accepted jobs are journaled to a
// write-ahead log in that directory (fsync policy per -fsync), and a
// restart re-queues every unfinished job warm-started from its last
// checkpoint, keeping job ids and dedup keys across the crash:
//
//	saimserve -addr :8080 -data /var/lib/saimserve &
//
// A panicking solver fails only its own job; after -retries attempts the
// request's dedup key is quarantined and identical submissions fail fast.
//
// With -node-id and -peers several saimserve processes form one logical
// service (cluster mode): any node accepts any request, submissions are
// routed to the ring owner of the model's fingerprint so identical
// models dedup cluster-wide, idle nodes steal queued jobs from busy
// peers, and by-id requests (status, result, cancel, SSE events) are
// relayed to the node that minted the id:
//
//	saimserve -addr :8080 -node-id n1 -peers 'n1=localhost:8080,n2=localhost:8081,n3=localhost:8082' &
//	saimserve -addr :8081 -node-id n2 -peers 'n1=localhost:8080,n2=localhost:8081,n3=localhost:8082' &
//	saimserve -addr :8082 -node-id n3 -peers 'n1=localhost:8080,n2=localhost:8081,n3=localhost:8082' &
//	curl -s localhost:8081/v1/cluster        # membership, ring, steal counters
//
// On SIGTERM/SIGINT the server drains gracefully: /v1/healthz flips to
// 503 "draining" (and cluster peers stop routing to this node), intake
// stops, queued and running solves finish (up to -drain), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ising-machines/saim/internal/cluster"
	"github.com/ising-machines/saim/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("saimserve: %v", err)
	}
}

// parseFsync maps the -fsync flag onto a journal sync policy.
func parseFsync(s string) (service.SyncPolicy, error) {
	switch s {
	case "always":
		return service.SyncAlways, nil
	case "interval":
		return service.SyncInterval, nil
	case "off":
		return service.SyncOff, nil
	default:
		return 0, fmt.Errorf("invalid -fsync %q (want always, interval, or off)", s)
	}
}

// parsePeers splits a -peers value ("id=host:port,id=host:port,...")
// into the cluster member map.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("invalid -peers entry %q (want id=host:port)", entry)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate -peers id %q", id)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty -peers")
	}
	return peers, nil
}

// run is the whole server lifecycle, factored out of main so tests can
// exec it as a child process and crash it. The resolved listen address
// is logged as "listening on <addr>" once the socket is bound — with
// -addr :0 that line is how a parent process learns the real port.
func run(args []string) error {
	fs := flag.NewFlagSet("saimserve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "solve concurrency (0 = GOMAXPROCS)")
		queue   = fs.Int("queue", 64, "queued-job bound before submissions get 503")
		cache   = fs.Int("cache", 256, "completed-result cache size")
		limit   = fs.Duration("limit", time.Minute, "default per-job time limit when a request carries none (0 = unlimited)")
		drain   = fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
		data    = fs.String("data", "", "durable journal directory; non-finished jobs are re-queued on restart (empty = in-memory only)")
		fsync   = fs.String("fsync", "interval", "journal fsync policy with -data: always, interval, or off")
		retries = fs.Int("retries", 2, "solve retries after a solver panic before the job's key is quarantined")

		nodeID    = fs.String("node-id", "", "cluster node id (no '-', '/', or spaces); requires -peers")
		peersFlag = fs.String("peers", "", "cluster member set as 'id=host:port,...' including self; enables cluster mode")
		heartbeat = fs.Duration("heartbeat", time.Second, "cluster heartbeat interval (suspect after 3x, evict after 6x)")
		stealMs   = fs.Duration("steal-interval", 200*time.Millisecond, "work-stealing probe interval (<0 disables stealing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*nodeID == "") != (*peersFlag == "") {
		return fmt.Errorf("cluster mode needs both -node-id and -peers")
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		DefaultTimeLimit: *limit,
		NodeID:           *nodeID,
	}
	if *retries <= 0 {
		cfg.MaxRetries = -1 // flag 0 means "never retry"; Config 0 means default
	} else {
		cfg.MaxRetries = *retries
	}

	var mgr *service.Manager
	if *data != "" {
		policy, err := parseFsync(*fsync)
		if err != nil {
			return err
		}
		cfg.Dir, cfg.Fsync = *data, policy
		mgr, err = service.Open(cfg)
		if err != nil {
			return err
		}
		if recovered := len(mgr.Jobs()); recovered > 0 {
			log.Printf("saimserve recovered %d unfinished job(s) from %s", recovered, *data)
		}
	} else {
		mgr = service.New(cfg)
	}

	var node *cluster.Node
	if *peersFlag != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			_ = mgr.Close(context.Background())
			return err
		}
		node, err = cluster.New(cluster.Config{
			Self:              *nodeID,
			Peers:             peers,
			Manager:           mgr,
			HeartbeatInterval: *heartbeat,
			StealInterval:     *stealMs,
			Logf:              log.Printf,
		})
		if err != nil {
			_ = mgr.Close(context.Background())
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = mgr.Close(context.Background())
		return err
	}
	srv := newNodeServer(mgr, node)
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("saimserve listening on %s (workers=%d queue=%d durable=%v cluster=%v)", ln.Addr(), *workers, *queue, *data != "", node != nil)
		errCh <- httpSrv.Serve(ln)
	}()
	if node != nil {
		node.Start()
		log.Printf("saimserve cluster node %s up (%d peers)", *nodeID, len(node.Info().Peers)-1)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Drain order matters: flip healthz to 503 "draining" first (and
	// advertise it to peers) while the listener still serves, let queued
	// and running solves finish, then tear the HTTP server down — a load
	// balancer probing /v1/healthz sees the drain, not a dead socket.
	log.Printf("saimserve draining (budget %v)...", *drain)
	srv.setDraining()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Close(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("saimserve: drain budget spent; running jobs force-cancelled (best-so-far results kept)")
		} else {
			log.Printf("saimserve: drain: %v", err)
		}
	}
	if node != nil {
		node.Close()
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("saimserve: http shutdown: %v", err)
	}
	fmt.Println("saimserve: drained")
	return nil
}
