package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/cluster"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/service"
)

// server is the HTTP face of a service.Manager. Routes:
//
//	POST   /v1/jobs             submit one model           → job envelope
//	POST   /v1/batch            submit many                → one envelope each
//	GET    /v1/jobs/{id}        status snapshot
//	GET    /v1/jobs/{id}/result final result (409 while running)
//	GET    /v1/jobs/{id}/events SSE progress stream + final result event
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/solvers          registered backend names
//	GET    /v1/healthz          liveness (503 "draining" once drain began)
//	GET    /statusz             manager stats (queue depth, worker
//	                            utilization, retry/panic counters, WAL lag)
//	GET    /v1/cluster[/...]    cluster introspection + inter-node
//	                            protocol (cluster mode only)
//
// In cluster mode every route works against any node: submissions are
// routed to the fingerprint's ring owner, and by-id requests to the
// node that minted the id (parsed from the "job-<node>-NNNNNN" shape),
// with SSE streams relayed through.
type server struct {
	mgr      *service.Manager
	node     *cluster.Node // nil outside cluster mode
	mux      *http.ServeMux
	draining atomic.Bool
}

// publishStatsOnce exposes the first server's stats through the expvar
// registry, so the standard /debug/vars machinery and expvar-scraping
// agents see them too. Once per process: expvar panics on duplicate
// names, and test binaries build many servers.
var publishStatsOnce sync.Once

// publishStats registers "saimserve.stats" (the whole snapshot as one
// JSON blob) plus one "saimserve.<counter>" expvar per Stats field, each
// a live integer — scrapers can diff queue depth, retries, panics, and
// WAL lag without parsing the blob.
func publishStats(mgr *service.Manager) {
	publishStatsOnce.Do(func() {
		expvar.Publish("saimserve.stats", expvar.Func(func() any { return mgr.Stats() }))
		ints := map[string]func(service.Stats) int64{
			"workers":      func(s service.Stats) int64 { return int64(s.Workers) },
			"queue_depth":  func(s service.Stats) int64 { return int64(s.QueueDepth) },
			"queued":       func(s service.Stats) int64 { return int64(s.Queued) },
			"busy":         func(s service.Stats) int64 { return int64(s.Busy) },
			"submitted":    func(s service.Stats) int64 { return s.Submitted },
			"dedup_hits":   func(s service.Stats) int64 { return s.DedupHits },
			"completed":    func(s service.Stats) int64 { return s.Completed },
			"failed":       func(s service.Stats) int64 { return s.Failed },
			"cancelled":    func(s service.Stats) int64 { return s.Cancelled },
			"expired":      func(s service.Stats) int64 { return s.Expired },
			"retries":      func(s service.Stats) int64 { return s.Retries },
			"panics":       func(s service.Stats) int64 { return s.Panics },
			"quarantined":  func(s service.Stats) int64 { return s.Quarantined },
			"stolen":       func(s service.Stats) int64 { return s.Stolen },
			"stolen_done":  func(s service.Stats) int64 { return s.StolenDone },
			"requeued":     func(s service.Stats) int64 { return s.Requeued },
			"wal_segments": func(s service.Stats) int64 { return int64(s.WALSegments) },
			"wal_bytes":    func(s service.Stats) int64 { return s.WALBytes },
			"wal_appended": func(s service.Stats) int64 { return s.WALAppended },
			"wal_synced":   func(s service.Stats) int64 { return s.WALSynced },
			"wal_lag":      func(s service.Stats) int64 { return s.WALLag },
			"wal_errors":   func(s service.Stats) int64 { return s.WALErrors },
		}
		for name, get := range ints {
			get := get
			expvar.Publish("saimserve."+name, expvar.Func(func() any { return get(mgr.Stats()) }))
		}
	})
}

// newServer builds a single-node server (no cluster routing).
func newServer(mgr *service.Manager) *server { return newNodeServer(mgr, nil) }

// newNodeServer builds the HTTP face of one manager, with cluster
// routing when node is non-nil.
func newNodeServer(mgr *service.Manager, node *cluster.Node) *server {
	s := &server{mgr: mgr, node: node, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.mgr.Stats())
	})
	if node != nil {
		h := node.Handler()
		s.mux.Handle("/v1/cluster", h)
		s.mux.Handle("/v1/cluster/", h)
	}
	publishStats(mgr)
	return s
}

// setDraining flips /v1/healthz to 503 "draining" and advertises the
// drain to cluster peers, so load balancers and thieves stop sending
// work while queued and running jobs finish.
func (s *server) setDraining() {
	s.draining.Store(true)
	if s.node != nil {
		s.node.SetDraining(true)
	}
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 with
// the literal body "draining" once SIGTERM drain began — routing stops
// before the node disappears, not after.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------------------------------------------------------------- wire ---

// submitRequest is one submission: a model in the canonical JSON wire
// format of package model, a backend name, and optional options.
type submitRequest struct {
	Model   json.RawMessage       `json:"model"`
	Solver  string                `json:"solver"`
	Options *service.SolveOptions `json:"options,omitempty"`
	NoDedup bool                  `json:"no_dedup,omitempty"`
}

// jobEnvelope is the submit/status body.
type jobEnvelope struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Hits counts submissions served by this job; > 1 means the request
	// was deduplicated onto an earlier identical submission.
	Hits        int           `json:"hits"`
	Solver      string        `json:"solver"`
	SubmittedAt string        `json:"submitted_at,omitempty"`
	StartedAt   string        `json:"started_at,omitempty"`
	FinishedAt  string        `json:"finished_at,omitempty"`
	Progress    *wireProgress `json:"progress,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// wireProgress is one streamed Progress snapshot. BestCost is omitted
// while no feasible sample exists (its in-memory value, +Inf, has no JSON
// encoding).
type wireProgress struct {
	Solver        string   `json:"solver"`
	Iteration     int      `json:"iteration"`
	Iterations    int      `json:"iterations,omitempty"`
	BestCost      *float64 `json:"best_cost,omitempty"`
	FeasibleRatio float64  `json:"feasible_ratio"`
	LambdaNorm    float64  `json:"lambda_norm,omitempty"`
	Sweeps        int64    `json:"sweeps"`
}

// wireResult is the final result body. Cost is the minimization-frame
// cost; Objective the value in the model's declared frame (they differ
// only for Maximize models). Both are omitted when no feasible assignment
// was found.
type wireResult struct {
	Solver        string   `json:"solver"`
	Winner        string   `json:"winner,omitempty"`
	Feasible      bool     `json:"feasible"`
	Cost          *float64 `json:"cost,omitempty"`
	Objective     *float64 `json:"objective,omitempty"`
	Assignment    []int    `json:"assignment,omitempty"`
	FeasibleRatio float64  `json:"feasible_ratio"`
	Penalty       float64  `json:"penalty,omitempty"`
	Sweeps        int64    `json:"sweeps"`
	Iterations    int      `json:"iterations"`
	Stopped       string   `json:"stopped"`
	Optimal       bool     `json:"optimal,omitempty"`
}

func toWireProgress(p saim.Progress) *wireProgress {
	out := &wireProgress{
		Solver:        p.Solver,
		Iteration:     p.Iteration,
		Iterations:    p.Iterations,
		FeasibleRatio: p.FeasibleRatio,
		LambdaNorm:    p.LambdaNorm,
		Sweeps:        p.Sweeps,
	}
	if !math.IsInf(p.BestCost, 0) && !math.IsNaN(p.BestCost) {
		c := p.BestCost
		out.BestCost = &c
	}
	return out
}

func toWireResult(sol *model.Solution) *wireResult {
	res := sol.Result()
	out := &wireResult{
		Solver:        res.Solver,
		Winner:        res.Winner,
		Feasible:      !res.Infeasible(),
		FeasibleRatio: res.FeasibleRatio,
		Penalty:       res.Penalty,
		Sweeps:        res.Sweeps,
		Iterations:    res.Iterations,
		Stopped:       res.Stopped.String(),
		Optimal:       res.Optimal,
	}
	if out.Feasible {
		cost, objective := res.Cost, sol.Objective()
		out.Cost = &cost
		out.Objective = &objective
		out.Assignment = sol.Assignment()
	}
	return out
}

func envelope(j *service.Job) jobEnvelope {
	st := j.Status()
	env := jobEnvelope{
		ID:     st.ID,
		State:  st.State.String(),
		Hits:   st.Hits,
		Solver: st.Solver,
		Error:  st.Err,
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	env.SubmittedAt = stamp(st.Submitted)
	env.StartedAt = stamp(st.Started)
	env.FinishedAt = stamp(st.Finished)
	if st.HasProgress {
		env.Progress = toWireProgress(st.Progress)
	}
	return env
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ------------------------------------------------------------- handlers ---

// submit parses and enqueues one submission, mapping service errors onto
// HTTP statuses (503 for backpressure/drain, 400 for bad requests).
func (s *server) submit(req submitRequest) (*service.Job, int, error) {
	if len(req.Model) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("missing model")
	}
	m := model.New()
	if err := json.Unmarshal(req.Model, m); err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Options go through as wire options: the manager lowers them itself,
	// so in durable mode they are journaled and survive a restart.
	job, err := s.mgr.Submit(service.Request{
		Model:       m,
		Solver:      req.Solver,
		WireOptions: req.Options,
		NoDedup:     req.NoDedup,
	})
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrClosed):
		return nil, http.StatusServiceUnavailable, err
	case err != nil:
		return nil, http.StatusBadRequest, err
	}
	return job, http.StatusAccepted, nil
}

// retryAfterSeconds is the backpressure hint sent with every 503: the
// queue is bounded and jobs drain continuously, so a short fixed retry
// interval beats having every rejected client hammer immediately.
const retryAfterSeconds = "1"

// maxRequestBody bounds submission bodies (32 MiB holds ~1M-term models
// with room to spare) so a hostile client cannot stream unbounded JSON.
const maxRequestBody = 32 << 20

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req submitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.forwardSubmit(w, r, req, raw) {
		return
	}
	job, status, err := s.submit(req)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, envelope(job))
}

// ------------------------------------------------------- cluster routing ---

// submitOwner places one submission on the ring: the owning peer's id
// and address, or local=true when this node should serve it itself —
// outside cluster mode, for requests that already crossed a node, for
// dedup-exempt submissions (any shard may run those), for bodies the
// local path will reject with a better error, and when this node owns
// the fingerprint.
func (s *server) submitOwner(r *http.Request, req submitRequest) (id, addr string, local bool) {
	if s.node == nil || r.Header.Get(cluster.ForwardHeader) != "" || req.NoDedup || len(req.Model) == 0 {
		return "", "", true
	}
	m := model.New()
	if err := json.Unmarshal(req.Model, m); err != nil {
		return "", "", true
	}
	fp, err := m.Fingerprint()
	if err != nil {
		return "", "", true
	}
	return s.node.RouteKey(fp)
}

// forwardSubmit relays a submission to its ring owner and writes the
// owner's response through, reporting whether it did. An unusable or
// unreachable owner fails over to local serving — availability beats
// strict sharding; the cost is a possible duplicate solve on the wrong
// shard, never a lost submission.
func (s *server) forwardSubmit(w http.ResponseWriter, r *http.Request, req submitRequest, raw []byte) bool {
	owner, addr, local := s.submitOwner(r, req)
	if local || !s.node.Usable(owner) {
		return false
	}
	status, body, err := s.node.RouteSubmit(r.Context(), addr, raw)
	if err != nil {
		s.node.ReportFailure(owner)
		s.node.NoteFallback()
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
	return true
}

// forwardJob relays a by-id request (status, result, cancel, events) to
// the node that minted the id, streaming the response — SSE relays in
// real time. It reports false when the id is local (or unparseable —
// the local manager then produces the 404). Unlike submissions, by-id
// requests cannot fail over: only the minting node knows the job, so an
// unreachable owner is surfaced as 503/502.
func (s *server) forwardJob(w http.ResponseWriter, r *http.Request) bool {
	if s.node == nil || r.Header.Get(cluster.ForwardHeader) != "" {
		return false
	}
	id := r.PathValue("id")
	mint, ok := s.node.MintNode(id)
	if !ok || mint == s.node.Self() {
		return false
	}
	addr, ok := s.node.Addr(mint)
	if !ok {
		return false
	}
	if !s.node.Usable(mint) {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("job %q lives on node %q, which is currently unavailable", id, mint))
		return true
	}
	s.node.NoteRelay()
	if err := s.node.Forward(w, r, addr); err != nil {
		s.node.ReportFailure(mint)
		writeError(w, http.StatusBadGateway, fmt.Errorf("node %q unreachable: %v", mint, err))
	}
	return true
}

// batchRequest submits several jobs in one call; each entry succeeds or
// fails independently.
type batchRequest struct {
	Jobs []submitRequest `json:"jobs"`
}

type batchEntry struct {
	Job   *jobEnvelope `json:"job,omitempty"`
	Error string       `json:"error,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	out := make([]batchEntry, len(req.Jobs))
	for i, sub := range req.Jobs {
		out[i] = s.batchSubmit(r, sub)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": out})
}

// batchSubmit places one batch entry: routed to its ring owner in
// cluster mode (each entry independently — a batch may span shards),
// locally otherwise or on forward failure.
func (s *server) batchSubmit(r *http.Request, sub submitRequest) batchEntry {
	if owner, addr, local := s.submitOwner(r, sub); !local && s.node.Usable(owner) {
		raw, err := json.Marshal(sub)
		if err == nil {
			status, body, err := s.node.RouteSubmit(r.Context(), addr, raw)
			if err == nil {
				return parseBatchEntry(status, body)
			}
			s.node.ReportFailure(owner)
			s.node.NoteFallback()
		}
	}
	job, _, err := s.submit(sub)
	if err != nil {
		return batchEntry{Error: err.Error()}
	}
	env := envelope(job)
	return batchEntry{Job: &env}
}

// parseBatchEntry folds a forwarded single-submit response into the
// batch shape: 2xx bodies are job envelopes, everything else carries an
// error field.
func parseBatchEntry(status int, body []byte) batchEntry {
	if status >= 200 && status < 300 {
		var env jobEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			return batchEntry{Error: fmt.Sprintf("bad response from owner node: %v", err)}
		}
		return batchEntry{Job: &env}
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return batchEntry{Error: e.Error}
	}
	return batchEntry{Error: fmt.Sprintf("owner node returned HTTP %d", status)}
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*service.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.forwardJob(w, r) {
		return
	}
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, envelope(j))
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.forwardJob(w, r) {
		return
	}
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	sol, err := j.Solution()
	switch {
	case errors.Is(err, service.ErrNotFinished):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		// Failed or cancelled-before-run: surface the job's error.
		writeJSON(w, http.StatusOK, map[string]any{"error": err.Error(), "state": j.Status().State.String()})
	default:
		writeJSON(w, http.StatusOK, toWireResult(sol))
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if s.forwardJob(w, r) {
		return
	}
	if j, ok := s.job(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusOK, envelope(j))
	}
}

func (s *server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"solvers": saim.Solvers()})
}

// handleEvents streams a job's progress as Server-Sent Events: one
// "progress" event per snapshot (coalesced under load so the stream never
// lags the solve), then a single "result" event when the job finishes,
// then EOF. A client disconnect just unsubscribes — the solve continues.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.forwardJob(w, r) {
		return
	}
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	ch, stop := j.Subscribe(16)
	defer stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-ch:
			if !ok {
				// Job finished: emit the terminal event.
				if sol, err := j.Solution(); err == nil {
					send("result", toWireResult(sol))
				} else {
					send("error", map[string]string{
						"state": j.Status().State.String(),
						"error": err.Error(),
					})
				}
				return
			}
			if !send("progress", toWireProgress(p)) {
				return
			}
		}
	}
}
