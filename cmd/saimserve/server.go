package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/service"
)

// server is the HTTP face of a service.Manager. Routes:
//
//	POST   /v1/jobs             submit one model           → job envelope
//	POST   /v1/batch            submit many                → one envelope each
//	GET    /v1/jobs/{id}        status snapshot
//	GET    /v1/jobs/{id}/result final result (409 while running)
//	GET    /v1/jobs/{id}/events SSE progress stream + final result event
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/solvers          registered backend names
//	GET    /v1/healthz          liveness
//	GET    /statusz             manager stats (queue depth, worker
//	                            utilization, retry/panic counters, WAL lag)
type server struct {
	mgr *service.Manager
	mux *http.ServeMux
}

// publishStatsOnce exposes the first server's stats through the expvar
// registry ("saimserve.stats"), so the standard /debug/vars machinery
// and expvar-scraping agents see them too. Once per process: expvar
// panics on duplicate names, and test binaries build many servers.
var publishStatsOnce sync.Once

func publishStats(mgr *service.Manager) {
	publishStatsOnce.Do(func() {
		expvar.Publish("saimserve.stats", expvar.Func(func() any { return mgr.Stats() }))
	})
}

func newServer(mgr *service.Manager) *server {
	s := &server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.mgr.Stats())
	})
	publishStats(mgr)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------------------------------------------------------------- wire ---

// submitRequest is one submission: a model in the canonical JSON wire
// format of package model, a backend name, and optional options.
type submitRequest struct {
	Model   json.RawMessage       `json:"model"`
	Solver  string                `json:"solver"`
	Options *service.SolveOptions `json:"options,omitempty"`
	NoDedup bool                  `json:"no_dedup,omitempty"`
}

// jobEnvelope is the submit/status body.
type jobEnvelope struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Hits counts submissions served by this job; > 1 means the request
	// was deduplicated onto an earlier identical submission.
	Hits        int           `json:"hits"`
	Solver      string        `json:"solver"`
	SubmittedAt string        `json:"submitted_at,omitempty"`
	StartedAt   string        `json:"started_at,omitempty"`
	FinishedAt  string        `json:"finished_at,omitempty"`
	Progress    *wireProgress `json:"progress,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// wireProgress is one streamed Progress snapshot. BestCost is omitted
// while no feasible sample exists (its in-memory value, +Inf, has no JSON
// encoding).
type wireProgress struct {
	Solver        string   `json:"solver"`
	Iteration     int      `json:"iteration"`
	Iterations    int      `json:"iterations,omitempty"`
	BestCost      *float64 `json:"best_cost,omitempty"`
	FeasibleRatio float64  `json:"feasible_ratio"`
	LambdaNorm    float64  `json:"lambda_norm,omitempty"`
	Sweeps        int64    `json:"sweeps"`
}

// wireResult is the final result body. Cost is the minimization-frame
// cost; Objective the value in the model's declared frame (they differ
// only for Maximize models). Both are omitted when no feasible assignment
// was found.
type wireResult struct {
	Solver        string   `json:"solver"`
	Winner        string   `json:"winner,omitempty"`
	Feasible      bool     `json:"feasible"`
	Cost          *float64 `json:"cost,omitempty"`
	Objective     *float64 `json:"objective,omitempty"`
	Assignment    []int    `json:"assignment,omitempty"`
	FeasibleRatio float64  `json:"feasible_ratio"`
	Penalty       float64  `json:"penalty,omitempty"`
	Sweeps        int64    `json:"sweeps"`
	Iterations    int      `json:"iterations"`
	Stopped       string   `json:"stopped"`
	Optimal       bool     `json:"optimal,omitempty"`
}

func toWireProgress(p saim.Progress) *wireProgress {
	out := &wireProgress{
		Solver:        p.Solver,
		Iteration:     p.Iteration,
		Iterations:    p.Iterations,
		FeasibleRatio: p.FeasibleRatio,
		LambdaNorm:    p.LambdaNorm,
		Sweeps:        p.Sweeps,
	}
	if !math.IsInf(p.BestCost, 0) && !math.IsNaN(p.BestCost) {
		c := p.BestCost
		out.BestCost = &c
	}
	return out
}

func toWireResult(sol *model.Solution) *wireResult {
	res := sol.Result()
	out := &wireResult{
		Solver:        res.Solver,
		Winner:        res.Winner,
		Feasible:      !res.Infeasible(),
		FeasibleRatio: res.FeasibleRatio,
		Penalty:       res.Penalty,
		Sweeps:        res.Sweeps,
		Iterations:    res.Iterations,
		Stopped:       res.Stopped.String(),
		Optimal:       res.Optimal,
	}
	if out.Feasible {
		cost, objective := res.Cost, sol.Objective()
		out.Cost = &cost
		out.Objective = &objective
		out.Assignment = sol.Assignment()
	}
	return out
}

func envelope(j *service.Job) jobEnvelope {
	st := j.Status()
	env := jobEnvelope{
		ID:     st.ID,
		State:  st.State.String(),
		Hits:   st.Hits,
		Solver: st.Solver,
		Error:  st.Err,
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	env.SubmittedAt = stamp(st.Submitted)
	env.StartedAt = stamp(st.Started)
	env.FinishedAt = stamp(st.Finished)
	if st.HasProgress {
		env.Progress = toWireProgress(st.Progress)
	}
	return env
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ------------------------------------------------------------- handlers ---

// submit parses and enqueues one submission, mapping service errors onto
// HTTP statuses (503 for backpressure/drain, 400 for bad requests).
func (s *server) submit(req submitRequest) (*service.Job, int, error) {
	if len(req.Model) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("missing model")
	}
	m := model.New()
	if err := json.Unmarshal(req.Model, m); err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Options go through as wire options: the manager lowers them itself,
	// so in durable mode they are journaled and survive a restart.
	job, err := s.mgr.Submit(service.Request{
		Model:       m,
		Solver:      req.Solver,
		WireOptions: req.Options,
		NoDedup:     req.NoDedup,
	})
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrClosed):
		return nil, http.StatusServiceUnavailable, err
	case err != nil:
		return nil, http.StatusBadRequest, err
	}
	return job, http.StatusAccepted, nil
}

// retryAfterSeconds is the backpressure hint sent with every 503: the
// queue is bounded and jobs drain continuously, so a short fixed retry
// interval beats having every rejected client hammer immediately.
const retryAfterSeconds = "1"

// maxRequestBody bounds submission bodies (32 MiB holds ~1M-term models
// with room to spare) so a hostile client cannot stream unbounded JSON.
const maxRequestBody = 32 << 20

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, status, err := s.submit(req)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, envelope(job))
}

// batchRequest submits several jobs in one call; each entry succeeds or
// fails independently.
type batchRequest struct {
	Jobs []submitRequest `json:"jobs"`
}

type batchEntry struct {
	Job   *jobEnvelope `json:"job,omitempty"`
	Error string       `json:"error,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	out := make([]batchEntry, len(req.Jobs))
	for i, sub := range req.Jobs {
		job, _, err := s.submit(sub)
		if err != nil {
			out[i] = batchEntry{Error: err.Error()}
			continue
		}
		env := envelope(job)
		out[i] = batchEntry{Job: &env}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": out})
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*service.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, envelope(j))
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	sol, err := j.Solution()
	switch {
	case errors.Is(err, service.ErrNotFinished):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		// Failed or cancelled-before-run: surface the job's error.
		writeJSON(w, http.StatusOK, map[string]any{"error": err.Error(), "state": j.Status().State.String()})
	default:
		writeJSON(w, http.StatusOK, toWireResult(sol))
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusOK, envelope(j))
	}
}

func (s *server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"solvers": saim.Solvers()})
}

// handleEvents streams a job's progress as Server-Sent Events: one
// "progress" event per snapshot (coalesced under load so the stream never
// lags the solve), then a single "result" event when the job finishes,
// then EOF. A client disconnect just unsubscribes — the solve continues.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	ch, stop := j.Subscribe(16)
	defer stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-ch:
			if !ok {
				// Job finished: emit the terminal event.
				if sol, err := j.Solution(); err == nil {
					send("result", toWireResult(sol))
				} else {
					send("error", map[string]string{
						"state": j.Status().State.String(),
						"error": err.Error(),
					})
				}
				return
			}
			if !send("progress", toWireProgress(p)) {
				return
			}
		}
	}
}
