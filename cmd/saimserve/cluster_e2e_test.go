package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/ising-machines/saim/internal/cluster"
	"github.com/ising-machines/saim/model"
)

// freePorts reserves n distinct loopback ports by binding and releasing
// them — cluster children need the full peer list before any of them
// starts, so :0 self-assignment is not an option.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return ports
}

// knapVariant renders a knapsack wire model whose objective varies with
// i, so each i has a distinct fingerprint (and so a distinct ring
// owner).
func knapVariant(i int) string {
	return fmt.Sprintf(`{
	  "families": [{"name": "take", "n": 3}],
	  "maximize": true,
	  "objective": {"lin": [{"v":0,"w":6},{"v":1,"w":5},{"v":2,"w":%d}]},
	  "constraints": [{"name":"cap","sense":"<=",
	    "expr":{"lin":[{"v":0,"w":2},{"v":1,"w":3},{"v":2,"w":4}]},"bound":5}]
	}`, 8+i)
}

// variantOwnedBy searches knapVariant space for a model the given node
// owns on a ring over the given members — mirroring the placement every
// node computes.
func variantOwnedBy(t *testing.T, members []string, owner string) (string, int) {
	t.Helper()
	ring := cluster.NewRing(0)
	ring.Reset(members)
	for i := 0; i < 512; i++ {
		m := model.New()
		if err := json.Unmarshal([]byte(knapVariant(i)), m); err != nil {
			t.Fatal(err)
		}
		fp, err := m.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := ring.Owner(fp); got == owner {
			return knapVariant(i), i
		}
	}
	t.Fatalf("no knapVariant owned by %s in 512 tries", owner)
	return "", 0
}

// clusterChildArgs builds the argv for one cluster child.
func clusterChildArgs(id string, port int, peers string, dir string) []string {
	return []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-node-id", id,
		"-peers", peers,
		"-heartbeat", "100ms",
		"-workers", "2",
		"-queue", "64",
		"-data", dir,
		"-fsync", "always",
		"-drain", "10s",
	}
}

// TestClusterKillNodeE2E is the cluster failure acceptance test: three
// real saimserve processes form a cluster, one dies by SIGKILL
// mid-solve, and (a) jobs on the survivors finish untouched, (b) new
// submissions for key ranges the dead node owned are rerouted and
// complete, (c) the dead node's accepted jobs are not lost — a restart
// on the same journal recovers and finishes every one of them.
func TestClusterKillNodeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level cluster test skipped in -short mode")
	}
	ports := freePorts(t, 3)
	ids := []string{"n1", "n2", "n3"}
	var peerList []string
	for i, id := range ids {
		peerList = append(peerList, fmt.Sprintf("%s=127.0.0.1:%d", id, ports[i]))
	}
	peers := strings.Join(peerList, ",")
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}

	urls := make(map[string]string, 3)
	children := make(map[string]*os.Process, 3)
	for i, id := range ids {
		cmd, url := startChild(t, clusterChildArgs(id, ports[i], peers, dirs[i])...)
		urls[id] = url
		children[id] = cmd.Process
	}
	t.Cleanup(func() {
		for _, p := range children {
			_ = p.Kill()
		}
	})

	// Long deadline-bounded jobs everywhere: no_dedup pins each to the
	// node it was submitted to, and the wall-clock limit guarantees they
	// are still mid-solve at kill time yet finish promptly after.
	long := `{"solver":"saim","no_dedup":true,"options":{"seed":%d,"iterations":100000000,"sweeps_per_run":50,"time_limit_ms":5000},"model":` + knapWire + `}`
	jobs := make(map[string][]string) // node → its accepted job ids
	for i, id := range ids {
		for k := 0; k < 2; k++ {
			resp, body := post(t, urls[id]+"/v1/jobs", fmt.Sprintf(long, i*10+k))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit on %s: %d %s", id, resp.StatusCode, body)
			}
			var env jobEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatal(err)
			}
			jobs[id] = append(jobs[id], env.ID)
		}
	}

	// Kill n1 mid-solve: no drain, no journal flush beyond fsync=always.
	if err := children["n1"].Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = children["n1"].Wait()

	// (b) A submission whose fingerprint n1 owned, sent through n2, must
	// be accepted anyway — first via failover, and once the failure
	// detector evicts n1, via rerouting to the ring successor.
	owned, _ := variantOwnedBy(t, ids, "n1")
	resp, body := post(t, urls["n2"]+"/v1/jobs",
		`{"solver":"saim","options":{"seed":77,"iterations":5000,"sweeps_per_run":50},"model":`+owned+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rerouted submit while n1 dead: %d %s", resp.StatusCode, body)
	}
	var rerouted jobEnvelope
	if err := json.Unmarshal(body, &rerouted); err != nil {
		t.Fatal(err)
	}
	if res := waitResult(t, urls["n2"], rerouted.ID); !res.Feasible {
		t.Fatalf("rerouted job %s infeasible", rerouted.ID)
	}

	// Wait for eviction to show on a survivor, then confirm post-eviction
	// placement mints on a live node directly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("n1 never evicted from n2's view")
		}
		resp, body := get(t, urls["n2"]+"/v1/cluster")
		if resp.StatusCode == http.StatusOK {
			var info cluster.Info
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatal(err)
			}
			dead := false
			for _, p := range info.Peers {
				if p.ID == "n1" && p.State == "dead" {
					dead = true
				}
			}
			if dead && len(info.Ring) == 2 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	survivors := []string{"n2", "n3"}
	postEviction, _ := variantOwnedBy(t, survivors, "n3")
	resp, body = post(t, urls["n2"]+"/v1/jobs",
		`{"solver":"saim","options":{"seed":78,"iterations":5000,"sweeps_per_run":50},"model":`+postEviction+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-eviction submit: %d %s", resp.StatusCode, body)
	}
	var routed jobEnvelope
	if err := json.Unmarshal(body, &routed); err != nil {
		t.Fatal(err)
	}
	if mint := mintOf(t, routed.ID); mint != "n3" {
		t.Fatalf("post-eviction job minted by %q, want ring successor n3", mint)
	}
	if res := waitResult(t, urls["n2"], routed.ID); !res.Feasible {
		t.Fatal("post-eviction job infeasible")
	}

	// (a) Survivors' accepted jobs all complete.
	for _, id := range survivors {
		for _, jid := range jobs[id] {
			if res := waitResult(t, urls[id], jid); !res.Feasible {
				t.Fatalf("job %s on survivor %s infeasible", jid, id)
			}
		}
	}

	// (c) No accepted job lost: restart n1 on its journal; every job it
	// accepted recovers and completes — readable through a peer relay.
	cmd1, url1 := startChild(t, clusterChildArgs("n1", ports[0], peers, dirs[0])...)
	children["n1"] = cmd1.Process
	urls["n1"] = url1
	for _, jid := range jobs["n1"] {
		if res := waitResult(t, urls["n1"], jid); !res.Feasible {
			t.Fatalf("recovered job %s infeasible", jid)
		}
		// And the relay path serves it from any node once n1 rejoins.
		if res := waitResult(t, urls["n3"], jid); !res.Feasible {
			t.Fatalf("recovered job %s unreadable via relay", jid)
		}
	}

	// Clean shutdown everywhere.
	for _, id := range ids {
		if err := children[id].Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM %s: %v", id, err)
		}
	}
	for _, id := range ids {
		done := make(chan struct{})
		go func(p *os.Process) {
			_, _ = p.Wait()
			close(done)
		}(children[id])
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("node %s did not drain after SIGTERM", id)
		}
	}
}
