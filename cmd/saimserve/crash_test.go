package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles the test binary as a real saimserve when invoked with
// SAIMSERVE_CHILD=1 (the helper-process pattern): the crash-recovery test
// execs itself, SIGKILLs the child mid-solve, and restarts it against the
// same journal — a genuine process death, not a simulated one.
func TestMain(m *testing.M) {
	if os.Getenv("SAIMSERVE_CHILD") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("SAIMSERVE_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "saimserve child: bad SAIMSERVE_ARGS:", err)
			os.Exit(2)
		}
		if err := run(args); err != nil {
			fmt.Fprintln(os.Stderr, "saimserve child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChild execs this test binary as a saimserve process bound to an
// ephemeral port and returns the command plus the server's base URL,
// parsed from the "listening on <addr>" log line.
func startChild(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	enc, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SAIMSERVE_CHILD=1", "SAIMSERVE_ARGS="+string(enc))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if testing.Verbose() {
				fmt.Fprintf(os.Stderr, "[child %d] %s\n", cmd.Process.Pid, line)
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := line[i+len("listening on "):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("child never logged its listening address")
		return nil, ""
	}
}

// TestCrashRecoveryKill9 is the end-to-end durability acceptance test: a
// real saimserve process takes jobs into a durable journal, dies by
// SIGKILL mid-solve, and a fresh process on the same directory re-queues
// every unfinished job, warm-starts each from its last checkpoint, and
// completes them all with results no worse than the pre-kill best.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash test skipped in -short mode")
	}
	dir := t.TempDir()
	childArgs := []string{
		"-addr", "127.0.0.1:0",
		"-data", dir,
		"-fsync", "always",
		"-workers", "4",
		"-drain", "10s",
	}

	child1, url1 := startChild(t, childArgs...)
	defer func() {
		_ = child1.Process.Kill()
	}()

	// Four distinct long-running jobs: a huge iteration budget bounded by
	// a wall-clock limit, so each is guaranteed to still be mid-solve at
	// kill time and to terminate promptly after recovery.
	const njobs = 4
	submit := `{"solver":"saim","no_dedup":true,"options":{"seed":%d,"iterations":100000000,"sweeps_per_run":50,"time_limit_ms":4000},"model":` + knapWire + `}`
	ids := make([]string, 0, njobs)
	for i := 0; i < njobs; i++ {
		resp, body := post(t, url1+"/v1/jobs", fmt.Sprintf(submit, 100+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var env jobEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, env.ID)
	}

	// Wait until every job has reported a feasible best — the same
	// improvement event that journals its first checkpoint (fsync=always
	// makes it durable before the status line shows it).
	preKill := make(map[string]float64, njobs)
	deadline := time.Now().Add(30 * time.Second)
	for len(preKill) < njobs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs made progress before the kill window", len(preKill), njobs)
		}
		for _, id := range ids {
			if _, ok := preKill[id]; ok {
				continue
			}
			resp, body := get(t, url1+"/v1/jobs/"+id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %s: %d %s", id, resp.StatusCode, body)
			}
			var env jobEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatal(err)
			}
			if env.State == "running" && env.Progress != nil && env.Progress.BestCost != nil {
				preKill[id] = *env.Progress.BestCost
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// kill -9: no drain, no shutdown record, no flushed buffers beyond
	// what fsync=always already forced.
	if err := child1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = child1.Wait()

	child2, url2 := startChild(t, childArgs...)
	defer func() {
		_ = child2.Process.Kill()
	}()

	// Every journaled job must be visible immediately and run to
	// completion, each final cost at least as good as its last pre-kill
	// checkpoint (the warm start's never-worse-than-seed guarantee).
	deadline = time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished after recovery", id)
			}
			resp, body := get(t, url2+"/v1/jobs/"+id+"/result")
			if resp.StatusCode == http.StatusConflict {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result %s after recovery: %d %s", id, resp.StatusCode, body)
			}
			var res wireResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("result %s: %s: %v", id, body, err)
			}
			if !res.Feasible || res.Cost == nil {
				t.Fatalf("recovered job %s finished infeasible: %s", id, body)
			}
			if *res.Cost > preKill[id]+1e-9 {
				t.Fatalf("recovered job %s cost %v worse than pre-kill checkpoint %v", id, *res.Cost, preKill[id])
			}
			break
		}
	}

	// The second instance shuts down cleanly.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- child2.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("child exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child did not drain after SIGTERM")
	}
}
