package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ising-machines/saim/service"
)

// knapWire is a small knapsack in the JSON wire format (optimum: items 0
// and 1 at weight 5, value 11, under capacity 5).
const knapWire = `{
  "families": [{"name": "take", "n": 3}],
  "maximize": true,
  "objective": {"lin": [{"v":0,"w":6},{"v":1,"w":5},{"v":2,"w":8}]},
  "constraints": [{"name":"cap","sense":"<=",
    "expr":{"lin":[{"v":0,"w":2},{"v":1,"w":3},{"v":2,"w":4}]},"bound":5}]
}`

func newTestServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Manager) {
	t.Helper()
	mgr := service.New(cfg)
	ts := httptest.NewServer(newServer(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Close(ctx)
	})
	return ts, mgr
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSubmitStatusResult drives the happy path over real HTTP: submit a
// model, poll status, and read the exact-solver result.
func TestSubmitStatusResult(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"solver":"exact","model":`+knapWire+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.ID == "" {
		t.Fatalf("no job id in %s", body)
	}

	var result wireResult
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/v1/jobs/"+env.ID+"/result")
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &result); err != nil {
				t.Fatal(err)
			}
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result: %d %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !result.Feasible || result.Objective == nil || *result.Objective != 11 {
		t.Fatalf("result = %s", body)
	}
	if result.Stopped != "completed" || !result.Optimal {
		t.Fatalf("stopped=%q optimal=%v", result.Stopped, result.Optimal)
	}

	resp, body = get(t, ts.URL+"/v1/jobs/"+env.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st jobEnvelope
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("state = %q", st.State)
	}
}

// TestDuplicateSubmissionHTTP pins dedup over the wire: the second
// identical submission returns the same job id with hits incremented.
func TestDuplicateSubmissionHTTP(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	req := `{"solver":"saim","options":{"seed":7,"iterations":50,"sweeps_per_run":100},"model":` + knapWire + `}`
	_, body1 := post(t, ts.URL+"/v1/jobs", req)
	_, body2 := post(t, ts.URL+"/v1/jobs", req)
	var a, b jobEnvelope
	if err := json.Unmarshal(body1, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &b); err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("duplicate submission got a new job: %s vs %s", a.ID, b.ID)
	}
	if b.Hits < 2 {
		t.Fatalf("hits = %d, want ≥ 2", b.Hits)
	}
}

// TestSSEEvents pins the streaming endpoint: progress events arrive in
// order and the stream terminates with a result event.
func TestSSEEvents(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	_, body := post(t, ts.URL+"/v1/jobs",
		`{"solver":"saim","options":{"seed":3,"iterations":80,"sweeps_per_run":100},"model":`+knapWire+`}`)
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events []string
	var lastData string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	if events[len(events)-1] != "result" {
		t.Fatalf("last event %q, want result (events: %v)", events[len(events)-1], events)
	}
	for _, e := range events[:len(events)-1] {
		if e != "progress" {
			t.Fatalf("unexpected event %q", e)
		}
	}
	var result wireResult
	if err := json.Unmarshal([]byte(lastData), &result); err != nil {
		t.Fatalf("final event payload: %v\n%s", err, lastData)
	}
	if !result.Feasible {
		t.Fatal("streamed result infeasible")
	}
}

// TestBatchEndpoint pins POST /v1/batch: independent entries succeed and
// fail independently.
func TestBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})
	batch := fmt.Sprintf(`{"jobs":[
	  {"solver":"exact","model":%s},
	  {"solver":"greedy","model":%s},
	  {"solver":"no-such-backend","model":%s},
	  {"solver":"exact"}
	]}`, knapWire, knapWire, knapWire)
	resp, body := post(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Jobs []batchEntry `json:"jobs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 4 {
		t.Fatalf("entries = %d", len(out.Jobs))
	}
	if out.Jobs[0].Job == nil || out.Jobs[1].Job == nil {
		t.Fatalf("valid entries failed: %s", body)
	}
	if out.Jobs[2].Error == "" || out.Jobs[3].Error == "" {
		t.Fatalf("invalid entries accepted: %s", body)
	}
}

// TestCancelEndpoint pins DELETE /v1/jobs/{id}.
func TestCancelEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	_, body := post(t, ts.URL+"/v1/jobs",
		`{"solver":"saim","options":{"seed":1,"iterations":2000000,"sweeps_per_run":200},"model":`+knapWire+`}`)
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+env.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/v1/jobs/"+env.ID)
		var st jobEnvelope
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "cancelled" || st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestErrorStatuses pins the HTTP error mapping.
func TestErrorStatuses(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1, QueueDepth: 1})
	if resp, _ := get(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/jobs", `{"solver":"exact"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing model: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/jobs", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/jobs", `{"solver":"exact","model":{"families":[]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model: %d", resp.StatusCode)
	}
	// Fill the single-worker, depth-1 queue with long jobs, then expect 503.
	long := `{"solver":"saim","no_dedup":true,"options":{"seed":%d,"iterations":2000000,"sweeps_per_run":200},"model":` + knapWire + `}`
	saw503 := false
	var ids []string
	for i := 0; i < 8; i++ {
		resp, body := post(t, ts.URL+"/v1/jobs", fmt.Sprintf(long, i+1))
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("503 response carries no Retry-After header")
			}
			break
		}
		var env jobEnvelope
		if err := json.Unmarshal(body, &env); err == nil {
			ids = append(ids, env.ID)
		}
	}
	if !saw503 {
		t.Fatal("backpressure never surfaced as 503")
	}
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestStatuszEndpoint pins the observability surface: /statusz reports
// the manager's counters as JSON.
func TestStatuszEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})
	_, body := post(t, ts.URL+"/v1/jobs", `{"solver":"exact","model":`+knapWire+`}`)
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, _ := get(t, ts.URL+"/v1/jobs/"+env.ID+"/result")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, sbody := get(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d %s", resp.StatusCode, sbody)
	}
	var st service.Stats
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatalf("statusz body %s: %v", sbody, err)
	}
	if st.Workers != 2 || st.Submitted < 1 || st.Completed < 1 {
		t.Fatalf("statusz stats = %+v", st)
	}
	if st.Durable || st.WALAppended != 0 {
		t.Fatalf("in-memory manager reports WAL activity: %+v", st)
	}
}

// TestTimeLimitOverHTTP pins the wire deadline: a huge-budget job with
// time_limit_ms finishes quickly reporting "time-limit".
func TestTimeLimitOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	_, body := post(t, ts.URL+"/v1/jobs",
		`{"solver":"saim","options":{"seed":2,"iterations":2000000,"sweeps_per_run":200,"time_limit_ms":150},"model":`+knapWire+`}`)
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, rbody := get(t, ts.URL+"/v1/jobs/"+env.ID+"/result")
		if resp.StatusCode == http.StatusOK {
			var result wireResult
			if err := json.Unmarshal(rbody, &result); err != nil {
				t.Fatal(err)
			}
			if result.Stopped != "time-limit" {
				t.Fatalf("stopped = %q, want time-limit", result.Stopped)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
