package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ising-machines/saim/internal/cluster"
	"github.com/ising-machines/saim/service"
)

// swapHandler lets an httptest server exist before its real handler
// does — the cluster needs every peer's address to build any node.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is an in-process N-node cluster: real HTTP between nodes,
// separate managers, shared nothing.
type testCluster struct {
	ids  []string
	urls map[string]string // id → base URL
	srvs map[string]*server
	mgrs map[string]*service.Manager
}

// startCluster boots n nodes named c1..cn wired to each other over
// loopback HTTP, with fast heartbeats and stealing enabled.
func startCluster(t *testing.T, n int, cfg service.Config) *testCluster {
	t.Helper()
	tc := &testCluster{
		urls: make(map[string]string, n),
		srvs: make(map[string]*server, n),
		mgrs: make(map[string]*service.Manager, n),
	}
	swaps := make(map[string]*swapHandler, n)
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%d", i+1)
		tc.ids = append(tc.ids, id)
		sw := &swapHandler{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		swaps[id] = sw
		tc.urls[id] = ts.URL
		peers[id] = strings.TrimPrefix(ts.URL, "http://")
	}
	for _, id := range tc.ids {
		ncfg := cfg
		ncfg.NodeID = id
		mgr := service.New(ncfg)
		node, err := cluster.New(cluster.Config{
			Self:              id,
			Peers:             peers,
			Manager:           mgr,
			HeartbeatInterval: 250 * time.Millisecond,
			StealInterval:     20 * time.Millisecond,
			StealLease:        30 * time.Second,
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := newNodeServer(mgr, node)
		swaps[id].set(srv)
		node.Start()
		tc.srvs[id] = srv
		tc.mgrs[id] = mgr
		t.Cleanup(func() {
			node.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = mgr.Close(ctx)
		})
	}
	return tc
}

// mintOf extracts the minting node from a cluster job id.
func mintOf(t *testing.T, id string) string {
	t.Helper()
	rest := strings.TrimPrefix(id, "job-")
	i := strings.LastIndexByte(rest, '-')
	if !strings.HasPrefix(id, "job-") || i <= 0 {
		t.Fatalf("job id %q is not cluster-scoped", id)
	}
	return rest[:i]
}

// otherNode returns any cluster node except the given one.
func (tc *testCluster) otherNode(not string) string {
	for _, id := range tc.ids {
		if id != not {
			return id
		}
	}
	return not
}

// waitResult polls a job's result through the given node until it is
// final.
func waitResult(t *testing.T, baseURL, id string) wireResult {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := get(t, baseURL+"/v1/jobs/"+id+"/result")
		switch resp.StatusCode {
		case http.StatusOK:
			var res wireResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("result %s: %s: %v", id, body, err)
			}
			if res.Stopped == "" {
				t.Fatalf("job %s finished without result: %s", id, body)
			}
			return res
		case http.StatusConflict:
			// Still running.
		case http.StatusServiceUnavailable, http.StatusBadGateway:
			// Relay target mid-eviction or mid-rejoin; retry.
		default:
			t.Fatalf("result %s: %d %s", id, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterCrossNodeDedup is the cross-node dedup acceptance test: the
// same model and options submitted to two different nodes must land on
// one job (the fingerprint's ring owner), solved once, with the second
// submission served as a dedup hit — and the result readable through a
// third node.
func TestClusterCrossNodeDedup(t *testing.T) {
	tc := startCluster(t, 3, service.Config{Workers: 2})
	req := `{"solver":"saim","options":{"seed":21,"iterations":60,"sweeps_per_run":50},"model":` + knapWire + `}`

	resp1, body1 := post(t, tc.urls["c1"]+"/v1/jobs", req)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via c1: %d %s", resp1.StatusCode, body1)
	}
	resp2, body2 := post(t, tc.urls["c2"]+"/v1/jobs", req)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via c2: %d %s", resp2.StatusCode, body2)
	}
	var a, b jobEnvelope
	if err := json.Unmarshal(body1, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &b); err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("same submission through two nodes made two jobs: %q vs %q", a.ID, b.ID)
	}
	if b.Hits < 2 && a.Hits < 2 {
		t.Fatalf("no dedup hit recorded: hits %d/%d", a.Hits, b.Hits)
	}
	owner := mintOf(t, a.ID)

	// Exactly one manager ever saw a solve for this model.
	solves := int64(0)
	for _, id := range tc.ids {
		solves += tc.mgrs[id].Stats().Submitted
	}
	if solves != 1 {
		t.Fatalf("cluster-wide submissions = %d, want 1 (single shard owns the key)", solves)
	}

	// The result is readable through a node that does not own the job.
	res := waitResult(t, tc.urls[tc.otherNode(owner)], a.ID)
	if !res.Feasible || res.Objective == nil || *res.Objective != 11 {
		t.Fatalf("relayed result = %+v", res)
	}
}

// TestClusterSSERelayThroughNonOwner pins the streaming relay: an SSE
// subscription opened against a node that did not mint the job streams
// progress and the terminal result event.
func TestClusterSSERelayThroughNonOwner(t *testing.T) {
	tc := startCluster(t, 3, service.Config{Workers: 2})
	req := `{"solver":"saim","options":{"seed":5,"iterations":120,"sweeps_per_run":60},"model":` + knapWire + `}`
	_, body := post(t, tc.urls["c1"]+"/v1/jobs", req)
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	relay := tc.otherNode(mintOf(t, env.ID))

	resp, err := http.Get(tc.urls[relay] + "/v1/jobs/" + env.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("relayed content type %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(events) == 0 || events[len(events)-1] != "result" {
		t.Fatalf("relayed SSE events = %v, want trailing result", events)
	}
}

// TestClusterWorkStealing loads one node with dedup-exempt jobs (those
// serve locally, so they pile onto one queue) and checks idle peers pull
// them over and every job still completes with its original id.
func TestClusterWorkStealing(t *testing.T) {
	tc := startCluster(t, 3, service.Config{Workers: 1, QueueDepth: 32})
	submit := `{"solver":"saim","no_dedup":true,"options":{"seed":%d,"iterations":100000,"sweeps_per_run":50,"time_limit_ms":30000},"model":` + knapWire + `}`
	const njobs = 8
	var ids []string
	for i := 0; i < njobs; i++ {
		resp, body := post(t, tc.urls["c1"]+"/v1/jobs", fmt.Sprintf(submit, 1000+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var env jobEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if mint := mintOf(t, env.ID); mint != "c1" {
			t.Fatalf("no_dedup submission routed away: minted by %q", mint)
		}
		ids = append(ids, env.ID)
	}
	for _, id := range ids {
		if res := waitResult(t, tc.urls["c1"], id); !res.Feasible {
			t.Fatalf("job %s infeasible", id)
		}
	}
	if stolen := tc.mgrs["c1"].Stats().Stolen; stolen == 0 {
		t.Fatal("no job was stolen from the loaded node")
	}
	done := tc.mgrs["c1"].Stats().StolenDone
	requeued := tc.mgrs["c1"].Stats().Requeued
	if done == 0 && requeued == 0 {
		t.Fatal("stolen jobs neither completed remotely nor returned")
	}
}

// TestClusterIntrospection pins /v1/cluster: every node reports itself,
// the full ring, and all peers.
func TestClusterIntrospection(t *testing.T) {
	tc := startCluster(t, 3, service.Config{Workers: 1})
	for _, id := range tc.ids {
		resp, body := get(t, tc.urls[id]+"/v1/cluster")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster info on %s: %d %s", id, resp.StatusCode, body)
		}
		var info cluster.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Self != id || len(info.Ring) != 3 || len(info.Peers) != 3 {
			t.Fatalf("info on %s = %+v", id, info)
		}
	}
}

// TestClusterDrainingHealthz pins the drain surface: healthz flips to
// 503 with the literal body "draining", and peers stop seeing the node
// as a routing target.
func TestClusterDrainingHealthz(t *testing.T) {
	tc := startCluster(t, 2, service.Config{Workers: 1})
	resp, body := get(t, tc.urls["c1"]+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d %s", resp.StatusCode, body)
	}
	tc.srvs["c1"].setDraining()
	resp, body = get(t, tc.urls["c1"]+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", resp.StatusCode)
	}
	if string(body) != "draining" {
		t.Fatalf("healthz drain body = %q, want %q", body, "draining")
	}
	// The ping surface advertises the drain to peers.
	resp, body = get(t, tc.urls["c1"]+"/v1/cluster/ping")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping during drain: %d", resp.StatusCode)
	}
	var ping cluster.PingReply
	if err := json.Unmarshal(body, &ping); err != nil {
		t.Fatal(err)
	}
	if !ping.Draining {
		t.Fatal("ping does not advertise the drain")
	}
}
