// Command saimsolve solves a QKP or MKP instance file with a chosen solver.
//
// Usage:
//
//	saimsolve -family qkp -solver saim   instance.qkp
//	saimsolve -family mkp -solver ga     instance.mkp
//	saimsolve -family qkp -solver exact  instance.qkp
//
// Solvers: saim (self-adaptive Ising machine), penalty (classical penalty
// method on the p-bit annealer), pt (parallel tempering), ga (Chu–Beasley
// genetic algorithm, MKP only), greedy, exact (branch and bound).
//
// The instance format is the one produced by saimgen (see packages
// internal/qkp and internal/mkp for the grammar).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/ga"
	"github.com/ising-machines/saim/internal/greedy"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/pt"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/qubofile"
)

func main() {
	var (
		family  = flag.String("family", "qkp", "instance family: qkp, mkp, or qubo (qbsolv file, unconstrained)")
		solver  = flag.String("solver", "saim", "saim, penalty, pt, ga, greedy, or exact")
		runs    = flag.Int("runs", 500, "annealing runs / SAIM iterations")
		sweeps  = flag.Int("sweeps", 1000, "Monte-Carlo sweeps per run")
		eta     = flag.Float64("eta", 0, "Lagrange step size (0 = family default)")
		alpha   = flag.Float64("alpha", 0, "penalty heuristic coefficient (0 = family default)")
		pweight = flag.Float64("p", 0, "explicit penalty weight (penalty/pt solvers; 0 = heuristic)")
		betaMax = flag.Float64("betamax", 0, "final inverse temperature (0 = family default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		limit   = flag.Duration("timelimit", time.Minute, "exact solver time limit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("expected exactly one instance file, got %d", flag.NArg()))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	switch *family {
	case "qkp":
		inst, err := qkp.Read(f)
		if err != nil {
			fatal(err)
		}
		solveQKP(inst, *solver, *runs, *sweeps, *eta, *alpha, *pweight, *betaMax, *seed, *limit)
	case "mkp":
		inst, err := mkp.Read(f)
		if err != nil {
			fatal(err)
		}
		solveMKP(inst, *solver, *runs, *sweeps, *eta, *alpha, *pweight, *betaMax, *seed, *limit)
	case "qubo":
		q, err := qubofile.Read(f)
		if err != nil {
			fatal(err)
		}
		bm := *betaMax
		if bm == 0 {
			bm = 10
		}
		start := time.Now()
		norm := q.Clone()
		norm.Normalize()
		x, _ := anneal.MinimizeQUBO(norm, anneal.Options{
			Runs: *runs, SweepsPerRun: *sweeps, BetaMax: bm, Seed: *seed,
		})
		fmt.Printf("qubo: %d variables\nenergy: %g\n", q.N(), q.Energy(x))
		selected := 0
		for _, v := range x {
			if v != 0 {
				selected++
			}
		}
		fmt.Printf("ones: %d/%d\nwall time: %s\n", selected, len(x), time.Since(start).Round(time.Millisecond))
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}
}

func solveQKP(inst *qkp.Instance, solver string, runs, sweeps int, eta, alpha, pweight, betaMax float64, seed uint64, limit time.Duration) {
	if eta == 0 {
		eta = 20
	}
	if alpha == 0 {
		alpha = 2
	}
	if betaMax == 0 {
		betaMax = 10
	}
	prob := inst.ToProblem(constraint.Binary)
	start := time.Now()
	switch solver {
	case "saim":
		res, err := core.Solve(prob, core.Options{
			Alpha: alpha, P: pweight, Eta: eta, Iterations: runs,
			SweepsPerRun: sweeps, BetaMax: betaMax, Seed: seed,
		})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "saim", res.Best, res.BestCost, res.FeasibleRatio(), res.TotalSweeps, start)
		fmt.Printf("penalty P: %.2f, final lambda: %v\n", res.P, res.Lambda)
	case "penalty":
		pw := pweight
		if pw == 0 {
			pw = 2 * inst.Density * float64(prob.Ext.NTotal)
		}
		res, err := anneal.SolvePenalty(prob, pw, anneal.Options{
			Runs: runs, SweepsPerRun: sweeps, BetaMax: betaMax, Seed: seed,
		})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "penalty", res.Best, res.BestCost, res.FeasibleRatio(), res.TotalSweeps, start)
	case "pt":
		pw := pweight
		if pw == 0 {
			pw = 100 * inst.Density * float64(prob.Ext.NTotal)
		}
		res, err := pt.SolvePenalty(prob, pw, pt.Options{
			Replicas: 26, Sweeps: runs * sweeps / 26, BetaMax: betaMax, SampleEvery: 10, Seed: seed,
		})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "pt", res.Best, res.BestCost, res.FeasibleRatio(), res.TotalSweeps, start)
	case "greedy":
		x := greedy.QKP(inst)
		printResult(inst.Name, "greedy", x, inst.Cost(x), 100, 0, start)
	case "exact":
		res, err := exact.SolveQKP(inst, exact.Options{TimeLimit: limit})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "exact", res.X, res.Cost, 100, 0, start)
		fmt.Printf("proven optimal: %v, nodes: %d\n", res.Optimal, res.Nodes)
	default:
		fatal(fmt.Errorf("solver %q not available for qkp", solver))
	}
}

func solveMKP(inst *mkp.Instance, solver string, runs, sweeps int, eta, alpha, pweight, betaMax float64, seed uint64, limit time.Duration) {
	if eta == 0 {
		eta = 0.05
	}
	if alpha == 0 {
		alpha = 5
	}
	if betaMax == 0 {
		betaMax = 50
	}
	prob := inst.ToProblem(constraint.Binary)
	start := time.Now()
	switch solver {
	case "saim":
		res, err := core.Solve(prob, core.Options{
			Alpha: alpha, P: pweight, Eta: eta, Iterations: runs,
			SweepsPerRun: sweeps, BetaMax: betaMax, Seed: seed,
		})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "saim", res.Best, res.BestCost, res.FeasibleRatio(), res.TotalSweeps, start)
		fmt.Printf("penalty P: %.2f, final lambda: %v\n", res.P, res.Lambda)
	case "penalty":
		pw := pweight
		if pw == 0 {
			pw = 5 * inst.ApproxDensity() * float64(prob.Ext.NTotal)
		}
		res, err := anneal.SolvePenalty(prob, pw, anneal.Options{
			Runs: runs, SweepsPerRun: sweeps, BetaMax: betaMax, Seed: seed,
		})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "penalty", res.Best, res.BestCost, res.FeasibleRatio(), res.TotalSweeps, start)
	case "ga":
		res, err := ga.Solve(inst, ga.Options{Population: 100, Children: runs * 20, Seed: seed})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "ga", res.Best, res.Cost, 100, 0, start)
	case "greedy":
		x := greedy.MKP(inst)
		printResult(inst.Name, "greedy", x, inst.Cost(x), 100, 0, start)
	case "exact":
		res, err := exact.SolveMKP(inst, exact.Options{TimeLimit: limit})
		if err != nil {
			fatal(err)
		}
		printResult(inst.Name, "exact", res.X, res.Cost, 100, 0, start)
		fmt.Printf("proven optimal: %v, nodes: %d\n", res.Optimal, res.Nodes)
	default:
		fatal(fmt.Errorf("solver %q not available for mkp", solver))
	}
}

func printResult(name, solver string, x ising.Bits, cost, feasPct float64, sweeps int64, start time.Time) {
	fmt.Printf("instance: %s\nsolver: %s\n", name, solver)
	if x == nil {
		fmt.Println("result: no feasible solution found")
		return
	}
	selected := 0
	for _, v := range x {
		if v != 0 {
			selected++
		}
	}
	fmt.Printf("cost: %.0f (value %.0f)\nselected items: %d/%d\nfeasible samples: %.1f%%\n",
		cost, -cost, selected, len(x), feasPct)
	if sweeps > 0 {
		fmt.Printf("Monte-Carlo sweeps: %d\n", sweeps)
	}
	fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saimsolve:", err)
	os.Exit(1)
}
