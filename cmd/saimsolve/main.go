// Command saimsolve solves a QKP, MKP, or QUBO instance file with any
// registered solver backend.
//
// Usage:
//
//	saimsolve -family qkp -solver saim   instance.qkp
//	saimsolve -family mkp -solver ga     instance.mkp
//	saimsolve -family qkp -solver exact  instance.qkp
//	saimsolve -family qubo               instance.qubo
//
// Solvers come from the unified registry (saim.Solvers()): saim (the
// self-adaptive Ising machine), penalty (classical penalty method), pt
// (parallel tempering), ga (Chu–Beasley genetic algorithm), greedy, and
// exact (branch and bound). Every family is converted to the unified
// saim.Model, so every solver that accepts the model's form works on it.
//
// Ctrl-C cancels the solve gracefully: the best solution found so far is
// printed before exiting. If the solve ends without a feasible solution
// the command prints a message to stderr and exits with status 2.
//
// The instance format is the one produced by saimgen (see packages
// internal/qkp and internal/mkp for the grammar).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/qubofile"
)

func main() {
	var (
		family   = flag.String("family", "qkp", "instance family: qkp, mkp, or qubo (qbsolv file, unconstrained)")
		solver   = flag.String("solver", "saim", "registered solver: "+strings.Join(saim.Solvers(), ", "))
		runs     = flag.Int("runs", 500, "annealing runs / SAIM iterations")
		sweeps   = flag.Int("sweeps", 1000, "Monte-Carlo sweeps per run")
		eta      = flag.Float64("eta", 0, "Lagrange step size (0 = family default)")
		alpha    = flag.Float64("alpha", 0, "penalty heuristic coefficient (0 = family/solver default)")
		pweight  = flag.Float64("p", 0, "explicit penalty weight (penalty/pt solvers; 0 = heuristic)")
		betaMax  = flag.Float64("betamax", 0, "final inverse temperature (0 = family default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		replicas = flag.Int("replicas", 0, "PT replicas / SAIM parallel restarts (0 = solver default)")
		limit    = flag.Duration("timelimit", time.Minute, "exact solver time limit")
		target   = flag.Float64("target", 0, "stop early when a feasible cost ≤ target is found (0 = disabled)")
		every    = flag.Int("progress", 0, "print a progress line to stderr every N iterations (0 = off)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("expected exactly one instance file, got %d", flag.NArg()))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	// Ctrl-C cancels the context; every backend returns its best-so-far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	model, name, opts, err := buildModel(f, *family, *eta, *alpha, *betaMax, *solver)
	if err != nil {
		fatal(err)
	}
	opts = append(opts,
		saim.WithIterations(*runs),
		saim.WithSweepsPerRun(*sweeps),
		saim.WithSeed(*seed),
		saim.WithTimeLimit(*limit),
	)
	if *pweight != 0 {
		opts = append(opts, saim.WithPenalty(*pweight))
	}
	if *replicas > 0 {
		opts = append(opts, saim.WithReplicas(*replicas))
	}
	if *target != 0 {
		opts = append(opts, saim.WithTargetCost(*target))
	}
	if *every > 0 {
		n := *every
		opts = append(opts, saim.WithProgress(func(p saim.Progress) {
			if (p.Iteration+1)%n == 0 {
				fmt.Fprintf(os.Stderr, "%s: iter %d/%d best %.0f feas %.1f%% |lambda| %.3f\n",
					p.Solver, p.Iteration+1, p.Iterations, p.BestCost, p.FeasibleRatio, p.LambdaNorm)
			}
		}))
	}

	start := time.Now()
	res, err := saim.SolveModel(ctx, *solver, model, opts...)
	if err != nil {
		fatal(err)
	}
	printResult(name, res, start)
	if res.Infeasible() {
		fmt.Fprintln(os.Stderr, "saimsolve: no feasible solution found")
		os.Exit(2)
	}
}

// buildModel reads the instance file and converts it to the unified Model,
// returning the instance name and the family's default solver options.
func buildModel(f *os.File, family string, eta, alpha, betaMax float64, solver string) (*saim.Model, string, []saim.Option, error) {
	var opts []saim.Option
	addDefaults := func(defEta, defAlpha, defBeta float64) {
		opts = append(opts, saim.WithEta(orF(eta, defEta)), saim.WithBetaMax(orF(betaMax, defBeta)))
		// The family α matters for the multiplier-based solvers; pt picks
		// its own aggressive default when no α is forced explicitly.
		if alpha != 0 {
			opts = append(opts, saim.WithAlpha(alpha))
		} else if solver == "saim" || solver == "penalty" {
			opts = append(opts, saim.WithAlpha(defAlpha))
		}
	}
	switch family {
	case "qkp":
		inst, err := qkp.Read(f)
		if err != nil {
			return nil, "", nil, err
		}
		addDefaults(20, 2, 10)
		b := saim.NewBuilder(inst.N)
		b.Density(inst.Density) // keep the paper's P = α·d·N pricing
		weights := make([]float64, inst.N)
		for i := 0; i < inst.N; i++ {
			b.Linear(i, -float64(inst.H[i]))
			weights[i] = float64(inst.A[i])
			for j := i + 1; j < inst.N; j++ {
				if inst.W[i][j] != 0 {
					b.Quadratic(i, j, -float64(inst.W[i][j]))
				}
			}
		}
		b.ConstrainLE(weights, float64(inst.B))
		m, err := b.Model()
		return m, inst.Name, opts, err
	case "mkp":
		inst, err := mkp.Read(f)
		if err != nil {
			return nil, "", nil, err
		}
		addDefaults(0.05, 5, 50)
		b := saim.NewBuilder(inst.N)
		b.Density(inst.ApproxDensity()) // paper's MKP surrogate d = 2/(N+1)
		for j := 0; j < inst.N; j++ {
			b.Linear(j, -float64(inst.H[j]))
		}
		for i := 0; i < inst.M; i++ {
			row := make([]float64, inst.N)
			for j, w := range inst.A[i] {
				row[j] = float64(w)
			}
			b.ConstrainLE(row, float64(inst.B[i]))
		}
		m, err := b.Model()
		return m, inst.Name, opts, err
	case "qubo":
		q, err := qubofile.Read(f)
		if err != nil {
			return nil, "", nil, err
		}
		opts = append(opts, saim.WithBetaMax(orF(betaMax, 10)))
		b := saim.NewBuilder(q.N())
		b.Term(q.Const)
		for i := 0; i < q.N(); i++ {
			b.Linear(i, q.C[i])
			for j := i + 1; j < q.N(); j++ {
				if v := q.Q.At(i, j); v != 0 {
					b.Quadratic(i, j, 2*v)
				}
			}
		}
		m, err := b.Model()
		return m, fmt.Sprintf("qubo-%dvars", q.N()), opts, err
	default:
		return nil, "", nil, fmt.Errorf("unknown family %q", family)
	}
}

func printResult(name string, res *saim.Result, start time.Time) {
	fmt.Printf("instance: %s\nsolver: %s\n", name, res.Solver)
	if res.Stopped != saim.StopCompleted {
		fmt.Printf("stopped: %s\n", res.Stopped)
	}
	if res.Assignment == nil {
		fmt.Println("result: no feasible solution found")
		fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	selected := 0
	for _, v := range res.Assignment {
		if v != 0 {
			selected++
		}
	}
	fmt.Printf("cost: %.0f (value %.0f)\nselected items: %d/%d\nfeasible samples: %.1f%%\n",
		res.Cost, -res.Cost, selected, len(res.Assignment), res.FeasibleRatio)
	if res.Sweeps > 0 {
		fmt.Printf("Monte-Carlo sweeps: %d\n", res.Sweeps)
	}
	if res.Penalty != 0 {
		fmt.Printf("penalty P: %.2f\n", res.Penalty)
	}
	if len(res.Lambda) > 0 {
		fmt.Printf("final lambda: %v\n", res.Lambda)
	}
	if res.Solver == "exact" {
		fmt.Printf("proven optimal: %v\n", res.Optimal)
	}
	fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func orF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saimsolve:", err)
	os.Exit(1)
}
