// Command saimsolve solves a QKP, MKP, or QUBO instance with any
// registered solver backend, through the declarative modeling layer.
//
// Usage:
//
//	saimsolve -family qkp -solver saim   instance.qkp
//	saimsolve -family mkp -solver ga     instance.mkp
//	saimsolve -family qkp -solver exact  instance.qkp
//	saimsolve -load model.qubo -solver saim
//	saimsolve -load model.qubo -solver decomp -sub 512 -inner saim
//
// Solvers come from the unified registry (saim.Solvers()): saim (the
// self-adaptive Ising machine), penalty (classical penalty method), pt
// (parallel tempering), ga (Chu–Beasley genetic algorithm), greedy,
// exact (branch and bound), and decomp (the qbsolv-style decomposition
// meta-solver — see -sub, -inner, -rounds, -tenure). Knapsack families
// build through the public problems catalog; -load reads a portable
// qbsolv-format QUBO through model.Load. Every path produces a
// declarative model, so every solver that accepts the model's form works
// on it, and results are reported with a named per-constraint
// slack/violation table.
//
// Under -solver decomp, -runs and -sweeps budget each inner subproblem
// solve and default to the decomposition defaults (12 runs of 400
// sweeps) rather than the whole-problem defaults.
//
// Ctrl-C cancels the solve gracefully: the best solution found so far is
// printed before exiting. If the solve ends without a feasible solution
// the command prints a message to stderr and exits with status 2.
//
// Instance files are the ones produced by saimgen (see packages
// internal/qkp and internal/mkp for the grammar).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/problems"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, solves, prints the
// report to stdout, and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("saimsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family   = fs.String("family", "qkp", "instance family: qkp, mkp, or qubo (qbsolv file, unconstrained)")
		load     = fs.String("load", "", "load a qbsolv-format QUBO model file (alternative to a positional instance)")
		solver   = fs.String("solver", "saim", "registered solver: "+strings.Join(saim.Solvers(), ", "))
		runs     = fs.Int("runs", 500, "annealing runs / SAIM iterations (decomp: budget per subproblem)")
		sweeps   = fs.Int("sweeps", 1000, "Monte-Carlo sweeps per run")
		eta      = fs.Float64("eta", 0, "Lagrange step size (0 = family default)")
		alpha    = fs.Float64("alpha", 0, "penalty heuristic coefficient (0 = family/solver default)")
		pweight  = fs.Float64("p", 0, "explicit penalty weight (penalty/pt/decomp solvers; 0 = heuristic)")
		betaMax  = fs.Float64("betamax", 0, "final inverse temperature (0 = family default)")
		seed     = fs.Uint64("seed", 1, "random seed")
		replicas = fs.Int("replicas", 0, "PT replicas / SAIM parallel restarts (0 = solver default)")
		limit    = fs.Duration("timelimit", time.Minute, "wall-clock time limit (every solver; best-so-far on expiry)")
		target   = fs.Float64("target", 0, "stop early when a feasible cost ≤ target is found (0 = disabled)")
		every    = fs.Int("progress", 0, "print a progress line to stderr every N iterations (0 = off)")
		sub      = fs.Int("sub", 0, "decomp: variables per subproblem (0 = default 256)")
		inner    = fs.String("inner", "", "decomp: inner solver for subproblems (default saim)")
		rounds   = fs.Int("rounds", 0, "decomp: round cap (0 = until convergence)")
		tenure   = fs.Int("tenure", -1, "decomp: tabu tenure in rounds (-1 = default 1)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	m, name, opts, err := buildModel(fs, *load, *family, *eta, *alpha, *betaMax, *solver)
	if err != nil {
		fmt.Fprintln(stderr, "saimsolve:", err)
		return 1
	}
	decomp := *solver == "decomp"
	// Under decomp, -runs/-sweeps budget the inner solves; fall back to
	// the decomposition defaults unless the user set them explicitly.
	if !decomp || explicit["runs"] {
		opts = append(opts, saim.WithIterations(*runs))
	}
	if !decomp || explicit["sweeps"] {
		opts = append(opts, saim.WithSweepsPerRun(*sweeps))
	}
	opts = append(opts,
		saim.WithSeed(*seed),
		saim.WithTimeLimit(*limit),
	)
	if *sub != 0 {
		opts = append(opts, saim.WithSubproblemSize(*sub))
	}
	if *inner != "" {
		opts = append(opts, saim.WithInnerSolver(*inner))
	}
	if *rounds != 0 {
		opts = append(opts, saim.WithRounds(*rounds))
	}
	if *tenure >= 0 {
		opts = append(opts, saim.WithTabuTenure(*tenure))
	}
	if *pweight != 0 {
		opts = append(opts, saim.WithPenalty(*pweight))
	}
	if *replicas > 0 {
		opts = append(opts, saim.WithReplicas(*replicas))
	}
	if *target != 0 {
		opts = append(opts, saim.WithTargetCost(*target))
	}
	if *every > 0 {
		n := *every
		opts = append(opts, saim.WithProgress(func(p saim.Progress) {
			if (p.Iteration+1)%n == 0 {
				fmt.Fprintf(stderr, "%s: iter %d/%d best %.0f feas %.1f%% |lambda| %.3f\n",
					p.Solver, p.Iteration+1, p.Iterations, p.BestCost, p.FeasibleRatio, p.LambdaNorm)
			}
		}))
	}

	start := time.Now()
	sol, err := m.Solve(ctx, *solver, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "saimsolve:", err)
		return 1
	}
	printSolution(stdout, name, sol, start)
	if !sol.Feasible() {
		fmt.Fprintln(stderr, "saimsolve: no feasible solution found")
		return 2
	}
	return 0
}

// buildModel reads the instance and builds the declarative model, the
// instance name, and the family's default solver options.
func buildModel(fs *flag.FlagSet, load, family string, eta, alpha, betaMax float64, solver string) (*model.Model, string, []saim.Option, error) {
	if load != "" {
		m, err := model.LoadFile(load)
		if err != nil {
			return nil, "", nil, err
		}
		return m, load, []saim.Option{saim.WithBetaMax(orF(betaMax, 10))}, nil
	}
	if fs.NArg() != 1 {
		return nil, "", nil, fmt.Errorf("expected exactly one instance file (or -load), got %d", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()

	var opts []saim.Option
	addDefaults := func(defEta, defAlpha, defBeta float64) {
		opts = append(opts, saim.WithEta(orF(eta, defEta)), saim.WithBetaMax(orF(betaMax, defBeta)))
		// The family α matters for the multiplier-based solvers; pt picks
		// its own aggressive default when no α is forced explicitly.
		if alpha != 0 {
			opts = append(opts, saim.WithAlpha(alpha))
		} else if solver == "saim" || solver == "penalty" || solver == "decomp" {
			opts = append(opts, saim.WithAlpha(defAlpha))
		}
	}
	switch family {
	case "qkp":
		inst, err := qkp.Read(f)
		if err != nil {
			return nil, "", nil, err
		}
		addDefaults(20, 2, 10)
		spec := problems.KnapsackSpec{
			Values:     make([]float64, inst.N),
			PairValues: make([][]float64, inst.N),
			Weights:    [][]float64{make([]float64, inst.N)},
			Capacities: []float64{float64(inst.B)},
			Density:    inst.Density, // keep the paper's P = α·d·N pricing
		}
		for i := 0; i < inst.N; i++ {
			spec.Values[i] = float64(inst.H[i])
			spec.Weights[0][i] = float64(inst.A[i])
			spec.PairValues[i] = make([]float64, inst.N)
			for j := 0; j < inst.N; j++ {
				spec.PairValues[i][j] = float64(inst.W[i][j])
			}
		}
		p, err := problems.Knapsack(spec)
		if err != nil {
			return nil, "", nil, err
		}
		return p.Model, inst.Name, opts, nil
	case "mkp":
		inst, err := mkp.Read(f)
		if err != nil {
			return nil, "", nil, err
		}
		addDefaults(0.05, 5, 50)
		spec := problems.KnapsackSpec{
			Values:     make([]float64, inst.N),
			Weights:    make([][]float64, inst.M),
			Capacities: make([]float64, inst.M),
			Density:    inst.ApproxDensity(), // paper's MKP surrogate d = 2/(N+1)
		}
		for j := 0; j < inst.N; j++ {
			spec.Values[j] = float64(inst.H[j])
		}
		for i := 0; i < inst.M; i++ {
			spec.Weights[i] = make([]float64, inst.N)
			for j, w := range inst.A[i] {
				spec.Weights[i][j] = float64(w)
			}
			spec.Capacities[i] = float64(inst.B[i])
		}
		p, err := problems.Knapsack(spec)
		if err != nil {
			return nil, "", nil, err
		}
		return p.Model, inst.Name, opts, nil
	case "qubo":
		m, err := model.Load(f)
		if err != nil {
			return nil, "", nil, err
		}
		opts = append(opts, saim.WithBetaMax(orF(betaMax, 10)))
		return m, fmt.Sprintf("qubo-%dvars", m.N()), opts, nil
	default:
		return nil, "", nil, fmt.Errorf("unknown family %q", family)
	}
}

func printSolution(w io.Writer, name string, sol *model.Solution, start time.Time) {
	res := sol.Result()
	fmt.Fprintf(w, "instance: %s\nsolver: %s\n", name, res.Solver)
	if res.Stopped != saim.StopCompleted {
		fmt.Fprintf(w, "stopped: %s\n", res.Stopped)
	}
	if !sol.Feasible() {
		fmt.Fprintln(w, "result: no feasible solution found")
		fmt.Fprintf(w, "wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	asn := sol.Assignment()
	selected := 0
	for _, v := range asn {
		if v != 0 {
			selected++
		}
	}
	fmt.Fprintf(w, "cost: %.0f (value %.0f)\nselected items: %d/%d\nfeasible samples: %.1f%%\n",
		res.Cost, -res.Cost, selected, len(asn), res.FeasibleRatio)
	if report := sol.Constraints(); len(report) > 0 {
		fmt.Fprintln(w, "constraints:")
		for _, cs := range report {
			fmt.Fprintf(w, "  %-14s %v %8.0f  activity %8.2f  slack %8.2f\n",
				cs.Name, cs.Sense, cs.Bound, cs.Activity, cs.Slack)
		}
	}
	if res.Sweeps > 0 {
		fmt.Fprintf(w, "Monte-Carlo sweeps: %d\n", res.Sweeps)
	}
	if res.Penalty != 0 {
		fmt.Fprintf(w, "penalty P: %.2f\n", res.Penalty)
	}
	if len(res.Lambda) > 0 {
		fmt.Fprintf(w, "final lambda: %v\n", res.Lambda)
	}
	if res.Solver == "exact" {
		fmt.Fprintf(w, "proven optimal: %v\n", res.Optimal)
	}
	fmt.Fprintf(w, "wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func orF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}
