package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// wallTimeRE strips the only non-deterministic output line.
var wallTimeRE = regexp.MustCompile(`(?m)^wall time: .*\n`)

// golden runs the CLI and compares stdout (minus wall time) against a
// checked-in golden file, so any output or solver-trajectory regression
// is caught by plain `go test ./...`.
func golden(t *testing.T, name string, wantCode int, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	if code != wantCode {
		t.Fatalf("exit code %d, want %d\nstderr: %s", code, wantCode, stderr.String())
	}
	got := wallTimeRE.ReplaceAllString(stdout.String(), "")
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenExactQKP(t *testing.T) {
	golden(t, "exact-qkp", 0,
		"-family", "qkp", "-solver", "exact", "testdata/tiny.qkp")
}

func TestGoldenSaimQKP(t *testing.T) {
	golden(t, "saim-qkp", 0,
		"-family", "qkp", "-solver", "saim", "-seed", "7", "-runs", "60", "-sweeps", "200",
		"testdata/tiny.qkp")
}

func TestGoldenGreedyQKP(t *testing.T) {
	golden(t, "greedy-qkp", 0,
		"-family", "qkp", "-solver", "greedy", "testdata/tiny.qkp")
}

func TestGoldenDecompQUBO(t *testing.T) {
	golden(t, "decomp-qubo", 0,
		"-load", "testdata/small.qubo", "-solver", "decomp",
		"-sub", "4", "-seed", "2", "-runs", "5", "-sweeps", "50")
}

func TestGoldenDecompInnerFlagQUBO(t *testing.T) {
	golden(t, "decomp-inner-qubo", 0,
		"-load", "testdata/small.qubo", "-solver", "decomp",
		"-sub", "2", "-inner", "saim", "-rounds", "4", "-tenure", "0", "-seed", "3")
}

func TestCLIErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-family", "nope", "testdata/tiny.qkp"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown family: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown family") {
		t.Fatalf("stderr %q lacks family error", stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-family", "qkp", "no-such-file.qkp"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-bogus-flag"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad flag: exit %d, want 1", code)
	}
}
