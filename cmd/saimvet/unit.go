package main

// The go vet unit-checker protocol: `go vet -vettool=saimvet` invokes
// the tool once per compilation unit with a JSON .cfg file describing
// the package's sources, its import map, and the export-data files the
// compiler already produced. This mirrors the contract implemented by
// x/tools' unitchecker, minus fact propagation — none of the saimvet
// analyzers exports facts, so the .vetx file written back is empty.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"github.com/ising-machines/saim/internal/analysis"
	"github.com/ising-machines/saim/internal/analysis/suite"
)

// unitConfig is the subset of the go vet .cfg schema saimvet consumes.
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "saimvet: %v\n", err)
		return 2
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "saimvet: decoding %s: %v\n", cfgFile, err)
		return 2
	}

	// go vet requires the fact file to exist even when no facts flow.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "saimvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler reports the syntax error
			}
			fmt.Fprintf(stderr, "saimvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "saimvet: %v\n", err)
		return 2
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "saimvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		// go vet relays this stream to the user verbatim.
		fmt.Fprintf(stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// contentHash hex-encodes the SHA-256 of r (the tool binary) for the
// -V=full build-cache key.
func contentHash(r io.Reader) string {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(h.Sum(nil))[:24]
}
