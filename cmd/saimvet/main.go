// Command saimvet runs the solver stack's custom static-analysis suite
// (internal/analysis/suite): the compile-time counterpart of the repo's
// cross-cutting runtime tests. See DESIGN.md §8 for the enforced
// invariants and README.md "Static analysis" for usage.
//
// Standalone:
//
//	go run ./cmd/saimvet ./...          # analyze packages, exit 1 on findings
//	go run ./cmd/saimvet -list          # print the analyzer registry
//
// As a go vet tool (the unit-checker protocol):
//
//	go build -o /tmp/saimvet ./cmd/saimvet
//	go vet -vettool=/tmp/saimvet ./...
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ising-machines/saim/internal/analysis"
	"github.com/ising-machines/saim/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet driver probes its -vettool with -V=full (a build-cache
	// key) and -flags (supported flags, JSON) before handing it .cfg
	// files; serve that protocol before ordinary flag parsing.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Fprintf(stdout, "saimvet version 1 buildID=%s\n", buildID())
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], stdout, stderr)
		}
	}

	fs := flag.NewFlagSet("saimvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer registry with one-line docs and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: saimvet [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "saimvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "saimvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "saimvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, shortenPos(d, wd))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "saimvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// shortenPos rewrites absolute diagnostic paths relative to the working
// directory, matching go vet's output style.
func shortenPos(d analysis.Diagnostic, wd string) string {
	s := d.String()
	prefix := wd + string(os.PathSeparator)
	if strings.HasPrefix(s, prefix) {
		return s[len(prefix):]
	}
	return s
}

// buildID derives a stable content hash of this executable so go vet's
// build cache invalidates cached results when the tool changes.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	return contentHash(f)
}
