package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// golden runs the CLI in-process and compares stdout against a
// checked-in golden file, the same idiom as cmd/saimsolve: the analyzer
// registry listing is part of the tool's interface, so drift shows up
// in plain `go test ./...`.
func golden(t *testing.T, name string, wantCode int, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if code != wantCode {
		t.Fatalf("exit code %d, want %d\nstderr: %s", code, wantCode, stderr.String())
	}
	got := stdout.String()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenList(t *testing.T) {
	golden(t, "list", 0, "-list")
}

// TestVetDriverProbes covers the two single-argument probes the go vet
// driver sends before any .cfg file. Their shape is part of the
// protocol: -V=full must be at least three fields with a non-"devel"
// third field (it keys go's build cache), -flags must be a JSON array.
func TestVetDriverProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full: exit %d, want 0", code)
	}
	fields := strings.Fields(stdout.String())
	if len(fields) < 3 || fields[0] != "saimvet" || fields[1] != "version" || fields[2] == "devel" {
		t.Fatalf("-V=full output %q does not satisfy the vet tool-ID protocol", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags: exit %d, want 0", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags output %q, want []", stdout.String())
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: saimvet") {
		t.Fatalf("stderr %q lacks usage text", stderr.String())
	}
}

// scratchModule writes a one-package throwaway module whose single file
// violates the seededrand invariant, giving the standalone and vettool
// paths a finding to report.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratchvet\n\ngo 1.24\n",
		"bad.go": `package scratchvet

import "math/rand"

func Jitter() float64 { return rand.Float64() }
`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStandaloneFindingsExitOne(t *testing.T) {
	t.Chdir(scratchModule(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[seededrand]") {
		t.Fatalf("stdout %q lacks the seededrand diagnostic", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Fatalf("stderr %q lacks the finding count", stderr.String())
	}
}

func TestStandaloneCleanExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks a package tree; skipped in -short")
	}
	// The tool's own package is a convenient known-clean target.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no diagnostics, got:\n%s", stdout.String())
	}
}

// TestGoVetVettool exercises the unit-checker protocol end to end: go
// vet probes the built binary, hands it per-package .cfg files, and
// surfaces its stderr diagnostics as vet failures.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet; skipped in -short")
	}
	exe := filepath.Join(t.TempDir(), "saimvet")
	build := exec.Command("go", "build", "-o", exe, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building saimvet: %v\n%s", err, out)
	}

	dirty := scratchModule(t)
	vet := exec.Command("go", "vet", "-vettool="+exe, "./...")
	vet.Dir = dirty
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet on a dirty module succeeded; output:\n%s", out)
	}
	if !strings.Contains(string(out), "global rand source") {
		t.Fatalf("vet output lacks the seededrand diagnostic:\n%s", out)
	}

	clean := exec.Command("go", "vet", "-vettool="+exe, "./internal/rng/...")
	clean.Dir = moduleRootForTest(t)
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet on a clean package failed: %v\n%s", err, out)
	}
}

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}
