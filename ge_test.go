package saim

import (
	"context"
	"math"
	"testing"
)

// geCover builds a tiny weighted set cover through ConstrainGE:
// min Σ c_j x_j s.t. each element covered at least once.
func geCover(t *testing.T) (*Model, []float64, [][]float64) {
	t.Helper()
	costs := []float64{3, 4, 2, 2, 3}
	rows := [][]float64{ // one coverage row per element
		{1, 1, 0, 0, 0},
		{1, 0, 1, 0, 0},
		{0, 1, 1, 0, 1},
		{0, 0, 0, 1, 1},
	}
	b := NewBuilder(len(costs))
	for j, c := range costs {
		b.Linear(j, c)
	}
	for _, row := range rows {
		b.ConstrainGE(row, 1)
	}
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	return m, costs, rows
}

// TestGEEvaluateSemantics checks feasibility gating of ≥ rows through
// Model.Evaluate against a brute-force check of the original constraints.
func TestGEEvaluateSemantics(t *testing.T) {
	m, costs, rows := geCover(t)
	n := len(costs)
	asn := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		want := true
		wantCost := 0.0
		for i := range asn {
			asn[i] = mask >> i & 1
			if asn[i] == 1 {
				wantCost += costs[i]
			}
		}
		for _, row := range rows {
			s := 0.0
			for j, a := range row {
				s += a * float64(asn[j])
			}
			if s < 1 {
				want = false
			}
		}
		cost, feasible, err := m.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if feasible != want || cost != wantCost {
			t.Fatalf("assignment %v: got (%v, %v), want (%v, %v)", asn, cost, feasible, wantCost, want)
		}
	}
}

// TestGERoundTripVsExact solves the GE model with SAIM and compares
// against the exact backend run on the complemented (≤-form) model —
// the round-trip of the negation lowering.
func TestGERoundTripVsExact(t *testing.T) {
	m, costs, rows := geCover(t)
	n := len(costs)

	// Complement y = 1 − x: min Σc − Σ c_j y_j with per-element rows
	// Σ y_j ≤ (#covering sets) − 1 — an integer MKP for the exact backend.
	cb := NewBuilder(n)
	total := 0.0
	for j, c := range costs {
		cb.Linear(j, -c)
		total += c
	}
	for _, row := range rows {
		k := 0.0
		for _, a := range row {
			k += a
		}
		cb.ConstrainLE(row, k-1)
	}
	comp, err := cb.Model()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveModel(context.Background(), "exact", comp)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Fatal("exact backend did not prove optimality")
	}
	optimum := total + exact.Cost

	// The complemented exact optimum is feasible on the GE model at the
	// same cost.
	x := make([]int, n)
	for j, y := range exact.Assignment {
		x[j] = 1 - y
	}
	cost, feasible, err := m.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible || math.Abs(cost-optimum) > 1e-9 {
		t.Fatalf("complement round-trip broken: cost %v feasible %v, want %v", cost, feasible, optimum)
	}

	// SAIM reaches the optimum on the GE model directly.
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(400), WithSweepsPerRun(200), WithEta(1), WithBetaMax(20), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("saim found no cover")
	}
	if math.Abs(res.Cost-optimum) > 1e-9 {
		t.Fatalf("saim cost %v, optimum %v", res.Cost, optimum)
	}
}

// TestGEBuilderErrors pins the builder-level validation of ≥ constraints.
func TestGEBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	b.ConstrainGE([]float64{-1, 1}, 1)
	if _, err := b.Model(); err == nil {
		t.Fatal("accepted negative ≥ coefficient")
	}
	b = NewBuilder(2)
	b.ConstrainGE([]float64{1, 1}, -1)
	if _, err := b.Model(); err == nil {
		t.Fatal("accepted negative ≥ bound")
	}
	b = NewBuilder(2)
	b.ConstrainGE([]float64{1, 1}, 3)
	if _, err := b.Model(); err == nil {
		t.Fatal("accepted unsatisfiable ≥ bound")
	}
	// GE cannot join a high-order model.
	b = NewBuilder(3)
	b.Term(1, 0, 1, 2)
	b.ConstrainGE([]float64{1, 1, 1}, 1)
	if _, err := b.Model(); err == nil {
		t.Fatal("accepted ≥ constraint in a high-order model")
	}
}

// TestModelErrorPaths pins Builder/Model error handling: out-of-range
// variables through Model(), Evaluate on malformed assignments.
func TestModelErrorPaths(t *testing.T) {
	b := NewBuilder(2)
	b.Linear(7, 1)
	if _, err := b.Model(); err == nil {
		t.Fatal("Model() accepted out-of-range variable")
	}
	b = NewBuilder(2)
	b.Term(1, 0, 5)
	if _, err := b.Model(); err == nil {
		t.Fatal("Model() accepted out-of-range Term variable")
	}

	m, err := NewBuilder(3).Linear(0, 1).ConstrainLE([]float64{1, 1, 1}, 2).Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Evaluate([]int{1, 0}); err == nil {
		t.Fatal("Evaluate accepted wrong-length assignment")
	}
	if _, _, err := m.Evaluate([]int{1, 0, 2}); err == nil {
		t.Fatal("Evaluate accepted non-binary entry")
	}
}

// TestDedupVarsHighArity pins the map-based dedup path: a high-arity Term
// with many repeated variables collapses to the right monomial.
func TestDedupVarsHighArity(t *testing.T) {
	b := NewBuilder(5)
	// 12 entries, 5 distinct — beyond the linear-scan threshold.
	b.Term(3, 0, 1, 0, 2, 1, 0, 3, 2, 1, 0, 4, 3)
	b.Linear(0, 1)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Form() != FormHighOrder {
		t.Fatalf("form %v, want high-order (degree-5 monomial)", m.Form())
	}
	cost, _, err := m.Evaluate([]int{1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 4 { // 3·(x0x1x2x3x4) + 1·x0
		t.Fatalf("all-ones cost %v, want 4", cost)
	}
	cost, _, err = m.Evaluate([]int{1, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1 { // monomial vanishes without x4
		t.Fatalf("cost %v, want 1", cost)
	}
	// Low-arity (linear-scan) path: same collapse semantics.
	b2 := NewBuilder(3)
	b2.Term(2, 1, 1, 2)
	m2, err := b2.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Form() != FormUnconstrained {
		t.Fatalf("form %v, want unconstrained (x1·x2 after collapse)", m2.Form())
	}
	if cost, _, _ := m2.Evaluate([]int{0, 1, 1}); cost != 2 {
		t.Fatalf("cost %v, want 2", cost)
	}
}
