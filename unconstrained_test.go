package saim

import "testing"

func TestBuildUnconstrainedRejectsConstraints(t *testing.T) {
	b := NewBuilder(2)
	b.ConstrainLE([]float64{1, 1}, 1)
	if _, err := b.BuildUnconstrained(); err == nil {
		t.Fatal("accepted constrained builder")
	}
}

func TestMinimizeMaxCutTriangle(t *testing.T) {
	// Max-cut on a triangle: QUBO min Σ_(i,j)∈E 2x_i x_j − deg_i x_i has
	// optimal cut 2 (any 2-1 split). In QUBO form for edge (i,j):
	// −(x_i + x_j − 2x_i x_j) summed over edges.
	b := NewBuilder(3)
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	for _, e := range edges {
		b.Linear(e[0], -1).Linear(e[1], -1)
		b.Quadratic(e[0], e[1], 2)
	}
	q, err := b.BuildUnconstrained()
	if err != nil {
		t.Fatal(err)
	}
	x, cost, err := Minimize(q, Options{Iterations: 40, SweepsPerRun: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost != -2 {
		t.Fatalf("cut energy = %v, want -2", cost)
	}
	ones := x[0] + x[1] + x[2]
	if ones != 1 && ones != 2 {
		t.Fatalf("not a 2-1 split: %v", x)
	}
	// Evaluate must agree.
	ev, err := q.Evaluate(x)
	if err != nil || ev != cost {
		t.Fatalf("Evaluate = %v, %v", ev, err)
	}
}

func TestMinimizeNil(t *testing.T) {
	if _, _, err := Minimize(nil, Options{}); err == nil {
		t.Fatal("accepted nil problem")
	}
}

func TestQUBOProblemEvaluateErrors(t *testing.T) {
	b := NewBuilder(2)
	b.Linear(0, 1)
	q, err := b.BuildUnconstrained()
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 2 {
		t.Fatalf("N = %d", q.N())
	}
	if _, err := q.Evaluate([]int{1}); err == nil {
		t.Fatal("accepted short assignment")
	}
}
