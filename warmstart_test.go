package saim

import (
	"context"
	"math"
	"testing"
)

// TestWarmStartNeverWorse seeds every warm-start-capable backend with the
// proven optimum under a minimal search budget: the guarantee is that a
// feasible warm start also seeds the best-so-far, so the result can never
// be worse than the assignment supplied.
func TestWarmStartNeverWorse(t *testing.T) {
	m := smallQKP(t)
	ctx := context.Background()
	exact, err := SolveModel(ctx, "exact", m)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Fatal("exact backend did not prove optimality")
	}
	opt := exact.Assignment

	for _, tc := range []struct {
		solver string
		opts   []Option
	}{
		{"saim", []Option{WithIterations(2), WithSweepsPerRun(10)}},
		{"saim", []Option{WithIterations(2), WithSweepsPerRun(10), WithReplicas(3)}},
		{"penalty", []Option{WithIterations(2), WithSweepsPerRun(10), WithPenalty(1)}},
		{"pt", []Option{WithIterations(1), WithSweepsPerRun(30), WithPenalty(1)}},
		{"ga", []Option{WithIterations(2)}},
	} {
		opts := append(append([]Option{}, tc.opts...), WithSeed(3), WithInitial(opt))
		res, err := SolveModel(ctx, tc.solver, m, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.solver, err)
		}
		if res.Infeasible() {
			t.Fatalf("%s: warm-started solve reports infeasible", tc.solver)
		}
		if res.Cost > exact.Cost {
			t.Fatalf("%s: warm-started cost %v worse than seeded optimum %v", tc.solver, res.Cost, exact.Cost)
		}
	}
}

// TestWarmStartUnconstrained seeds the multi-run annealer on a QUBO: the
// result can never be worse than the energy of the warm start.
func TestWarmStartUnconstrained(t *testing.T) {
	b := NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.Linear(i, -1)
		for j := i + 1; j < 6; j++ {
			b.Quadratic(i, j, 2)
		}
	}
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one bit on minimizes: energy −1.
	init := []int{0, 0, 1, 0, 0, 0}
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(1), WithSweepsPerRun(5), WithSeed(1), WithInitial(init))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > -1 {
		t.Fatalf("cost %v worse than warm-start energy −1", res.Cost)
	}
}

// TestWarmStartTargetShortCircuits pins the immediate stop: a warm start
// that already meets the target cost ends the solve without spending any
// iterations.
func TestWarmStartTargetShortCircuits(t *testing.T) {
	m := smallQKP(t)
	ctx := context.Background()
	exact, err := SolveModel(ctx, "exact", m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(ctx, "saim", m,
		WithIterations(500), WithSweepsPerRun(100), WithSeed(1),
		WithInitial(exact.Assignment), WithTargetCost(exact.Cost))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopTarget {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, StopTarget)
	}
	if res.Iterations != 0 {
		t.Fatalf("spent %d iterations on an already-satisfied target", res.Iterations)
	}
	if res.Cost != exact.Cost {
		t.Fatalf("cost %v, want %v", res.Cost, exact.Cost)
	}
}

// TestWarmStartValidation rejects malformed initial assignments uniformly
// across backends.
func TestWarmStartValidation(t *testing.T) {
	m := smallQKP(t)
	ctx := context.Background()
	for _, solver := range []string{"saim", "penalty", "pt", "ga"} {
		if _, err := SolveModel(ctx, solver, m, WithInitial([]int{1, 0})); err == nil {
			t.Fatalf("%s: accepted wrong-length initial", solver)
		}
		bad := make([]int, m.N())
		bad[0] = 2
		if _, err := SolveModel(ctx, solver, m, WithInitial(bad)); err == nil {
			t.Fatalf("%s: accepted non-binary initial", solver)
		}
	}
}

// TestWarmStartInfeasibleInitial checks that an infeasible warm start does
// not poison the result: it seeds nothing and the solve proceeds normally.
func TestWarmStartInfeasibleInitial(t *testing.T) {
	m := smallQKP(t)
	all := make([]int, m.N())
	for i := range all {
		all[i] = 1 // picks everything: far over capacity
	}
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(60), WithSweepsPerRun(100), WithEta(2), WithSeed(5),
		WithInitial(all))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("solve found nothing despite a normal budget")
	}
	if cost, feasible, _ := m.Evaluate(res.Assignment); !feasible || cost != res.Cost {
		t.Fatalf("result inconsistent: cost %v feasible %v vs reported %v", cost, feasible, res.Cost)
	}
}

// TestFeasibleRatioDefinitionConsistent pins the one documented definition
// of FeasibleRatio — percentage of examined samples that were feasible —
// across the streaming and final reports of the annealing and
// parallel-tempering backends.
func TestFeasibleRatioDefinitionConsistent(t *testing.T) {
	m := smallQKP(t)
	for _, tc := range []struct {
		solver string
		opts   []Option
	}{
		{"saim", []Option{WithIterations(40), WithSweepsPerRun(50)}},
		{"penalty", []Option{WithIterations(40), WithSweepsPerRun(50), WithPenalty(2)}},
		{"pt", []Option{WithIterations(2), WithSweepsPerRun(200), WithPenalty(2)}},
	} {
		var last Progress
		saw := false
		opts := append(append([]Option{}, tc.opts...), WithSeed(7),
			WithProgress(func(p Progress) { last = p; saw = true }))
		res, err := SolveModel(context.Background(), tc.solver, m, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.solver, err)
		}
		if !saw {
			t.Fatalf("%s: no progress streamed", tc.solver)
		}
		if math.Abs(last.FeasibleRatio-res.FeasibleRatio) > 1e-9 {
			t.Fatalf("%s: final Progress.FeasibleRatio %v != Result.FeasibleRatio %v",
				tc.solver, last.FeasibleRatio, res.FeasibleRatio)
		}
	}
}
