package saim

import (
	"context"
	"testing"
)

// buildKnapModel builds a small constrained model through the public
// Builder, with a quadratic objective so the coupling structure is
// non-trivial for both kernels.
func buildKnapModel(t *testing.T) *Model {
	t.Helper()
	b := NewBuilder(6)
	values := []float64{6, 5, 8, 9, 6, 7}
	weights := []float64{2, 3, 6, 7, 5, 9}
	for i, v := range values {
		b.Term(-v, i)
	}
	b.Term(-3, 0, 2).Term(-2, 1, 4).Term(-4, 3, 5)
	b.ConstrainLE(weights, 15)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// WithMachine must never change results — only which kernel runs. All
// three kinds share one rng stream and update rule, so the solve outcome
// is bit-identical across them.
func TestWithMachineKernelsAgree(t *testing.T) {
	m := buildKnapModel(t)
	run := func(k MachineKind) *Result {
		res, err := SolveModel(context.Background(), "saim", m,
			WithIterations(30), WithSweepsPerRun(50), WithEta(0.5), WithSeed(11),
			WithMachine(k))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	auto, dense, sparse := run(MachineAuto), run(MachineDense), run(MachineSparse)
	if dense.Cost != sparse.Cost || dense.FeasibleRatio != sparse.FeasibleRatio {
		t.Fatalf("kernels disagree: dense %v/%v vs sparse %v/%v",
			dense.Cost, dense.FeasibleRatio, sparse.Cost, sparse.FeasibleRatio)
	}
	if auto.Cost != dense.Cost {
		t.Fatalf("auto kernel diverged: %v vs %v", auto.Cost, dense.Cost)
	}
	for i, v := range dense.Assignment {
		if sparse.Assignment[i] != v {
			t.Fatalf("assignments diverge at %d", i)
		}
	}
}

// The penalty backend must honor WithMachine too (it anneals the same
// machines), and forcing kernels must agree there as well.
func TestWithMachinePenaltyBackend(t *testing.T) {
	m := buildKnapModel(t)
	run := func(k MachineKind) *Result {
		res, err := SolveModel(context.Background(), "penalty", m,
			WithIterations(20), WithSweepsPerRun(50), WithSeed(3), WithMachine(k))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if d, s := run(MachineDense), run(MachineSparse); d.Cost != s.Cost {
		t.Fatalf("penalty backend kernels disagree: %v vs %v", d.Cost, s.Cost)
	}
}

// Replicated saim solves now stream aggregated progress instead of
// dropping callbacks for replicas beyond the first.
func TestReplicatedSolveStreamsProgress(t *testing.T) {
	m := buildKnapModel(t)
	calls := 0
	var lastSamples int
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(8), WithSweepsPerRun(20), WithEta(0.5), WithSeed(5),
		WithReplicas(3),
		WithProgress(func(p Progress) {
			calls++
			if p.Iteration+1 > lastSamples {
				lastSamples = p.Iteration + 1
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3*8 {
		t.Fatalf("Iterations = %d, want 24", res.Iterations)
	}
	if calls != 3*8 {
		t.Fatalf("progress fired %d times, want one per replica iteration (24)", calls)
	}
	if lastSamples != 24 {
		t.Fatalf("aggregate iteration high-water %d, want 24", lastSamples)
	}
}
